"""Tests for co-occurrence counts, PMI, and the co-occurrence recommender."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.model import CoOccurrenceModel
from repro.cooccurrence.pmi import pmi_score, pmi_table
from repro.data.events import EventType, Interaction
from repro.data.sessions import UserContext


def log(*rows):
    """rows: (user, item, event) with implicit increasing timestamps."""
    return [
        Interaction(float(step), user, item, event)
        for step, (user, item, event) in enumerate(rows)
    ]


def simple_counts() -> CoOccurrenceCounts:
    return CoOccurrenceCounts.from_interactions(
        5,
        log(
            (1, 0, EventType.VIEW),
            (1, 1, EventType.VIEW),
            (1, 2, EventType.CONVERSION),
            (2, 0, EventType.VIEW),
            (2, 1, EventType.VIEW),
            (3, 2, EventType.CONVERSION),
            (3, 3, EventType.CONVERSION),
        ),
    )


class TestCounts:
    def test_co_view_symmetric(self):
        counts = simple_counts()
        assert counts.co_viewed(0)[1] == counts.co_viewed(1)[0] == 2.0

    def test_co_buy_counts_conversions(self):
        counts = simple_counts()
        assert counts.co_bought(2)[3] == 1.0
        assert counts.co_bought(3)[2] == 1.0

    def test_cart_weighted_co_buy(self):
        counts = CoOccurrenceCounts.from_interactions(
            4,
            log((1, 0, EventType.CART), (1, 1, EventType.CONVERSION)),
        )
        assert counts.co_bought(0)[1] == pytest.approx(0.5)

    def test_no_self_pairs(self):
        counts = CoOccurrenceCounts.from_interactions(
            3, log((1, 0, EventType.VIEW), (1, 0, EventType.VIEW))
        )
        assert 0 not in counts.co_viewed(0)

    def test_pair_window_limits_pairs(self):
        rows = [(1, i, EventType.VIEW) for i in range(10)]
        near = CoOccurrenceCounts.from_interactions(10, log(*rows), pair_window=1)
        assert 2 not in near.co_viewed(0)
        assert 1 in near.co_viewed(0)

    def test_top_co_viewed_sorted(self):
        counts = CoOccurrenceCounts.from_interactions(
            4,
            log(
                (1, 0, EventType.VIEW), (1, 1, EventType.VIEW),
                (2, 0, EventType.VIEW), (2, 1, EventType.VIEW),
                (3, 0, EventType.VIEW), (3, 2, EventType.VIEW),
            ),
        )
        assert counts.top_co_viewed(0, 2) == [1, 2]

    def test_strong_sets_threshold(self):
        counts = simple_counts()
        strong = counts.strong_co_occurrence_sets(min_count=2.0)
        assert 1 in strong.get(0, set())
        # co-buy pair (2,3) has count 1.0 < 2.0, so not strong
        assert 3 not in strong.get(2, set())


class TestPmi:
    def test_pmi_positive_for_associated_pair(self):
        counts = simple_counts()
        assert pmi_score(counts, 0, 1) > pmi_score(counts, 0, 3)

    def test_pmi_table_covers_neighbours(self):
        counts = simple_counts()
        table = pmi_table(counts, 0)
        assert set(table) == set(counts.co_viewed(0))

    def test_pmi_buys_ranks_co_bought_above_unrelated(self):
        counts = CoOccurrenceCounts.from_interactions(
            3,
            log(
                (1, 0, EventType.CONVERSION), (1, 1, EventType.CONVERSION),
                (2, 0, EventType.CONVERSION), (2, 1, EventType.CONVERSION),
                (3, 2, EventType.CONVERSION), (3, 2, EventType.CONVERSION),
            ),
        )
        co_bought = pmi_score(counts, 0, 1, use_buys=True)
        unrelated = pmi_score(counts, 0, 2, use_buys=True)
        assert co_bought > unrelated


class TestModel:
    def test_scores_favor_co_occurring_items(self):
        counts = simple_counts()
        model = CoOccurrenceModel(counts)
        context = UserContext((0,), (EventType.VIEW,))
        scores = model.score_items(context, [1, 3])
        assert scores[0] > scores[1]

    def test_recency_weighting(self):
        """The most recent context item should dominate votes."""
        counts = CoOccurrenceCounts.from_interactions(
            6,
            log(
                (1, 0, EventType.VIEW), (1, 2, EventType.VIEW),
                (2, 1, EventType.VIEW), (2, 3, EventType.VIEW),
            ),
        )
        model = CoOccurrenceModel(counts, recency_decay=0.3)
        context = UserContext((0, 1), (EventType.VIEW, EventType.VIEW))
        scores = model.score_items(context, [2, 3])
        # item 3 co-occurs with the most recent context item (1)
        assert scores[1] > scores[0]

    def test_tail_items_get_popularity_epsilon_only(self):
        counts = simple_counts()
        model = CoOccurrenceModel(counts)
        context = UserContext((0,), (EventType.VIEW,))
        scores = model.score_items(context, [4])
        assert abs(scores[0]) < 1e-3  # essentially no signal

    def test_coverage(self):
        counts = simple_counts()
        model = CoOccurrenceModel(counts)
        # items 0,1,2,3 have co-view or pair entries; computed over co_view
        coverage = model.coverage()
        assert 0.0 < coverage <= 1.0

    def test_recommend_excludes_context(self):
        counts = simple_counts()
        model = CoOccurrenceModel(counts)
        context = UserContext((0,), (EventType.VIEW,))
        recs = model.recommend(context, k=3)
        assert all(r.item_index != 0 for r in recs)

    def test_pmi_cache_consistency(self):
        counts = simple_counts()
        model = CoOccurrenceModel(counts)
        context = UserContext((0,), (EventType.VIEW,))
        a = model.score_items(context, [1, 2, 3])
        b = model.score_items(context, [1, 2, 3])
        assert np.array_equal(a, b)
