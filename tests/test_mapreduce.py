"""Tests for input splits and the MapReduce runtime."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.preemption import PreemptionModel
from repro.exceptions import MapReduceError
from repro.mapreduce.runtime import MapReduceJob, MapReduceRuntime, _TaskRun
from repro.mapreduce.splits import (
    contiguous_splits_by_key,
    random_permutation_splits,
    uniform_splits,
)


class TestSplits:
    def test_uniform_preserves_all_records(self):
        splits = uniform_splits(list(range(10)), 3)
        assert [len(s) for s in splits] == [4, 3, 3]
        assert [r for s in splits for r in s.records] == list(range(10))

    def test_more_splits_than_records(self):
        splits = uniform_splits([1, 2], 5)
        assert len(splits) == 2

    def test_zero_splits_rejected(self):
        with pytest.raises(MapReduceError):
            uniform_splits([1], 0)

    def test_random_permutation_conserves_records(self):
        records = list(range(50))
        splits = random_permutation_splits(records, 5, seed=1)
        flattened = sorted(r for s in splits for r in s.records)
        assert flattened == records

    def test_random_permutation_deterministic(self):
        a = random_permutation_splits(list(range(20)), 4, seed=3)
        b = random_permutation_splits(list(range(20)), 4, seed=3)
        assert [s.records for s in a] == [s.records for s in b]

    def test_contiguous_by_key_groups_keys(self):
        records = [("b", 1), ("a", 1), ("b", 2), ("a", 2), ("c", 1)]
        splits = contiguous_splits_by_key(records, lambda r: r[0], 2)
        ordered = [r for s in splits for r in s.records]
        keys = [k for k, _ in ordered]
        # each key appears in one contiguous run
        runs = [keys[0]]
        for key in keys[1:]:
            if key != runs[-1]:
                runs.append(key)
        assert len(runs) == len(set(keys))


class TestRuntime:
    def word_count_job(self, **kwargs):
        return MapReduceJob(
            name="wc",
            mapper=lambda record: [(record, 1)],
            reducer=lambda key, values: [(key, sum(values))],
            **kwargs,
        )

    def test_outputs_correct(self):
        runtime = MapReduceRuntime(seed=0)
        records = ["a", "b", "a", "c", "a"]
        outputs, _ = runtime.run(self.word_count_job(), uniform_splits(records, 2))
        assert sorted(outputs) == [("a", 3), ("b", 1), ("c", 1)]

    def test_outputs_independent_of_split_strategy(self):
        runtime = MapReduceRuntime(seed=0)
        records = [f"k{i % 7}" for i in range(40)]
        out_a, _ = runtime.run(self.word_count_job(), uniform_splits(records, 4))
        out_b, _ = runtime.run(
            self.word_count_job(), random_permutation_splits(records, 4, seed=9)
        )
        assert sorted(out_a) == sorted(out_b)

    def test_default_reducer_is_identity(self):
        job = MapReduceJob(name="ident", mapper=lambda r: [(0, r)])
        outputs, _ = MapReduceRuntime(seed=0).run(job, uniform_splits([1, 2, 3], 1))
        assert sorted(outputs) == [1, 2, 3]

    def test_stats_accounting(self):
        runtime = MapReduceRuntime(seed=1)
        job = self.word_count_job(n_workers=2, record_cost_fn=lambda r: 10.0)
        outputs, stats = runtime.run(job, uniform_splits(["a"] * 8, 4))
        assert stats.map_tasks == 4
        assert stats.map_attempts >= 4
        assert stats.makespan_seconds > 0
        assert stats.cost > 0
        assert len(stats.worker_busy_seconds) == 2

    def test_preemptions_retry_and_still_complete(self):
        hostile = PreemptionModel(preemptible_mean_uptime_hours=0.05)
        runtime = MapReduceRuntime(preemption_model=hostile, seed=2)
        job = self.word_count_job(record_cost_fn=lambda r: 30.0)
        outputs, stats = runtime.run(job, uniform_splits(["a"] * 6, 3))
        assert sorted(outputs) == [("a", 6)]
        assert stats.preemptions > 0
        assert stats.map_attempts > stats.map_tasks

    def test_load_imbalance_metric(self):
        runtime = MapReduceRuntime(seed=3)
        # one giant record in one split, three trivial splits
        job = MapReduceJob(
            name="skew",
            mapper=lambda r: [(0, r)],
            n_workers=4,
            record_cost_fn=lambda r: float(r),
        )
        splits = uniform_splits([1000, 1, 1, 1], 4)
        _, stats = runtime.run(job, splits)
        assert stats.load_imbalance > 2.0

    def test_charges_go_to_shared_ledger(self):
        from repro.cluster.cost import CostLedger

        ledger = CostLedger()
        runtime = MapReduceRuntime(ledger=ledger, seed=4)
        runtime.run(self.word_count_job(), uniform_splits(["a"], 1))
        assert ledger.total("wc") > 0

    def test_zero_workers_rejected(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(name="bad", mapper=lambda r: [], n_workers=0)


@settings(max_examples=15, deadline=None)
@given(
    n_records=st.integers(min_value=1, max_value=60),
    n_splits=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_runtime_output_is_split_invariant(n_records, n_splits, seed):
    """Real outputs never depend on how scheduling/splitting happened."""
    records = [i % 5 for i in range(n_records)]
    job = MapReduceJob(
        name="sum",
        mapper=lambda r: [(r % 2, r)],
        reducer=lambda key, values: [(key, sum(values))],
    )
    runtime = MapReduceRuntime(seed=seed)
    outputs, _ = runtime.run(job, random_permutation_splits(records, n_splits, seed))
    expected_even = sum(r for r in records if r % 2 == 0)
    expected_odd = sum(r for r in records if r % 2 == 1)
    as_dict = dict(outputs)
    assert as_dict.get(0, 0) == expected_even
    assert as_dict.get(1, 0) == expected_odd


class TestSpeculativeExecution:
    def stats_for(self, speculative: bool, seed: int = 8):
        hostile = PreemptionModel(preemptible_mean_uptime_hours=0.05)
        runtime = MapReduceRuntime(preemption_model=hostile, seed=seed)
        job = MapReduceJob(
            name="spec",
            mapper=lambda r: [(0, r)],
            n_workers=4,
            record_cost_fn=lambda r: 60.0,
            speculative_execution=speculative,
        )
        _, stats = runtime.run(job, uniform_splits([1] * 8, 8))
        return stats

    def test_backups_fire_under_heavy_preemption(self):
        stats = self.stats_for(speculative=True)
        assert stats.speculative_copies > 0

    def test_no_backups_when_disabled(self):
        stats = self.stats_for(speculative=False)
        assert stats.speculative_copies == 0

    def test_speculation_cuts_straggler_makespan_on_average(self):
        """Averaged over seeds, racing a backup copy against a straggler
        shortens the job (at some extra billed cost)."""
        base_makespans, spec_makespans = [], []
        for seed in range(10):
            base_makespans.append(self.stats_for(False, seed).makespan_seconds)
            spec_makespans.append(self.stats_for(True, seed).makespan_seconds)
        assert sum(spec_makespans) < sum(base_makespans)

    def test_outputs_unaffected(self):
        hostile = PreemptionModel(preemptible_mean_uptime_hours=0.05)
        runtime = MapReduceRuntime(preemption_model=hostile, seed=3)
        job = MapReduceJob(
            name="spec-out",
            mapper=lambda r: [(0, 1)],
            reducer=lambda key, values: [sum(values)],
            record_cost_fn=lambda r: 30.0,
            speculative_execution=True,
        )
        outputs, _ = runtime.run(job, uniform_splits([0] * 6, 3))
        assert outputs == [6]

    def test_backup_copies_not_double_billed(self):
        """Regression: each racing copy is billed its own time truncated
        at the winner's wall-clock.  The old formula added the winner's
        full wall time on top of the original's bill, double-charging
        whenever billed time diverges from wall time."""

        class ScriptedRuntime(MapReduceRuntime):
            def __init__(self, runs):
                super().__init__()
                self._script = list(runs)

            def _simulate_attempts(self, duration, priority, records=()):
                return self._script.pop(0)

        runtime = ScriptedRuntime(
            [
                # Straggling original: 100s wall but only 40s billed
                # (most attempts died at launch without accruing bill).
                _TaskRun(
                    wall=100.0, billed=40.0, attempts=3, preemptions=2,
                    completed=True,
                ),
                # The backup wins the race at 30s wall, 12s billed.
                _TaskRun(
                    wall=30.0, billed=12.0, attempts=1, preemptions=0,
                    completed=True,
                ),
            ]
        )
        job = MapReduceJob(
            name="spec-bill",
            mapper=lambda r: [(r, r)],
            n_workers=1,
            record_cost_fn=lambda r: 10.0,
            task_startup_seconds=0.0,
            reduce_record_seconds=0.0,
            speculative_execution=True,
            speculation_factor=2.0,
        )
        outputs, stats = runtime.run(job, uniform_splits([1], 1))
        assert outputs == [1]
        assert stats.speculative_copies == 1
        # Winner defines wall time; bills: min(40, 30) + min(12, 30).
        assert stats.makespan_seconds == pytest.approx(30.0)
        assert stats.billed_vm_seconds == pytest.approx(42.0)
