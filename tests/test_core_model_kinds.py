"""Tests for the WALS drop-in substitution through the pipeline (§VI)."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core.config import ConfigRecord
from repro.core.grid import GridSpec, generate_configs
from repro.core.inference import InferencePipeline
from repro.core.registry import ModelRegistry
from repro.core.sweep import SweepPlanner
from repro.core.training import TrainerSettings, TrainingPipeline, train_config
from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams
from repro.models.wals import WALSModel

FAST = TrainerSettings(max_epochs_full=3, max_epochs_incremental=2,
                       sampler="uniform")

MIXED_GRID = GridSpec(
    n_factors=(8,),
    learning_rates=(0.08,),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(True,),
    use_brand=(True,),
    use_price=(True,),
    model_kinds=("bpr", "wals"),
    max_configs=8,
)


class TestConfigModelKind:
    def test_defaults_to_bpr(self):
        record = ConfigRecord("r", 0, BPRHyperParams())
        assert record.model_kind == "bpr"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ConfigRecord("r", 0, BPRHyperParams(), model_kind="nn")

    def test_for_day_preserves_kind(self):
        record = ConfigRecord("r", 0, BPRHyperParams(), model_kind="wals")
        assert record.for_day(3, warm_start=True).model_kind == "wals"

    def test_grid_emits_both_kinds(self, small_dataset):
        configs = generate_configs(small_dataset, MIXED_GRID)
        kinds = {c.model_kind for c in configs}
        assert kinds == {"bpr", "wals"}


class TestWalsTrainConfig:
    def test_trains_and_evaluates(self, small_dataset):
        config = ConfigRecord(
            small_dataset.retailer_id, 0,
            BPRHyperParams(n_factors=8, seed=1), model_kind="wals",
        )
        model, output = train_config(config, small_dataset, FAST)
        assert isinstance(model, WALSModel)
        assert model.retailer_id == small_dataset.retailer_id
        assert 0.0 <= output.map_at_10 <= 1.0
        assert output.epochs_run == FAST.max_epochs_full
        assert output.train_seconds > 0

    def test_warm_start_copies_factors(self, small_dataset):
        import numpy as np

        config = ConfigRecord(
            small_dataset.retailer_id, 0,
            BPRHyperParams(n_factors=8, seed=1), model_kind="wals",
        )
        first, _ = train_config(config, small_dataset, FAST)
        warm_config = config.for_day(1, warm_start=True)
        second, output = train_config(
            warm_config, small_dataset, FAST, warm_model=first
        )
        assert output.epochs_run == FAST.max_epochs_incremental
        assert np.all(np.isfinite(second.item_factors))

    def test_cross_kind_warm_start_ignored(self, small_dataset):
        """Yesterday's WALS model cannot seed today's BPR model (and
        vice versa) — the pipeline just cold-starts instead of crashing."""
        wals_config = ConfigRecord(
            small_dataset.retailer_id, 0,
            BPRHyperParams(n_factors=8, seed=1), model_kind="wals",
        )
        wals_model, _ = train_config(wals_config, small_dataset, FAST)
        bpr_config = ConfigRecord(
            small_dataset.retailer_id, 0,
            BPRHyperParams(n_factors=8, seed=1),
            warm_start=True, day=1,
        )
        model, output = train_config(
            bpr_config, small_dataset, FAST, warm_model=wals_model
        )
        assert output.epochs_run >= 1


class TestMixedPipeline:
    def test_pipeline_trains_both_and_serves_best(self, tiny_dataset):
        cluster = build_cluster(n_cells=1, machines_per_cell=4)
        registry = ModelRegistry()
        pipeline = TrainingPipeline(cluster, registry, settings=FAST, seed=0)
        plan = SweepPlanner(MIXED_GRID).full_sweep([tiny_dataset])
        datasets = {tiny_dataset.retailer_id: tiny_dataset}
        outputs, stats = pipeline.run(plan.configs, datasets)
        kinds_trained = {o.config.model_kind for o in outputs}
        assert kinds_trained == {"bpr", "wals"}
        # Whatever won, inference must serve it through the common
        # interface.
        inference = InferencePipeline(cluster, registry, top_n=3)
        results, _ = inference.run(datasets)
        result = results[tiny_dataset.retailer_id]
        assert result.view_recs
