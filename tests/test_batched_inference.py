"""Parity of the batched inference fast path with the per-item reference.

The batched stack (``recommend_batch``, the batch candidate selectors,
the batched evaluator, block-based ``InferencePipeline`` records) is a
pure optimization: every test here pins its output to the per-item code
path it replaces — identical items, identical order, identical ranks —
including the awkward corners (diverged NaN models, empty candidate
sets, dead-lettered blocks).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_cluster
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.candidates import CandidateSelector, RepurchaseDetector
from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.inference import InferencePipeline, _item_blocks
from repro.core.registry import ModelRegistry, TrainedModel
from repro.data.datasets import dataset_from_synthetic
from repro.data.events import EventType
from repro.data.generator import RetailerSpec, generate_retailer
from repro.data.sessions import UserContext
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.evaluation.sampled import SampledRankEstimator
from repro.mapreduce.runtime import FaultPlan
from repro.models.base import _exclude_items
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer

_ENV = None


def _env():
    """Shared (dataset, model, selector) for the hypothesis properties.

    Module-global rather than a fixture because ``@given`` functions
    cannot take function-scoped pytest fixtures.
    """
    global _ENV
    if _ENV is None:
        dataset = dataset_from_synthetic(
            generate_retailer(
                RetailerSpec(
                    retailer_id="batch_env",
                    n_items=120,
                    n_users=80,
                    n_events=1200,
                    taxonomy_depth=3,
                    taxonomy_fanout=3,
                    seed=17,
                )
            )
        )
        model = BPRModel(
            dataset.catalog,
            dataset.taxonomy,
            BPRHyperParams(n_factors=8, seed=3),
        )
        BPRTrainer(model, dataset, max_epochs=2, batch_size=32, seed=7).train()
        counts = CoOccurrenceCounts.from_interactions(
            dataset.n_items, dataset.train
        )
        selector = CandidateSelector(
            dataset.taxonomy,
            counts,
            dataset.catalog,
            repurchase=RepurchaseDetector(dataset.taxonomy, dataset.train),
        )
        _ENV = (dataset, model, selector)
    return _ENV


def _assert_same_recs(batched, reference):
    assert [s.item_index for s in batched] == [
        s.item_index for s in reference
    ]
    assert np.allclose(
        [s.score for s in batched],
        [s.score for s in reference],
        equal_nan=True,
    )


contexts_strategy = st.lists(
    st.integers(min_value=0, max_value=119), min_size=1, max_size=5
).map(
    lambda items: UserContext(
        tuple(items), tuple(EventType.VIEW for _ in items)
    )
)


# ----------------------------------------------------------------------
# recommend_batch vs recommend
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    batch=st.lists(contexts_strategy, min_size=0, max_size=6),
    k=st.integers(min_value=0, max_value=15),
    pool_seed=st.integers(min_value=0, max_value=10_000),
    exclude=st.booleans(),
    restrict=st.booleans(),
)
def test_property_recommend_batch_matches_recommend(
    batch, k, pool_seed, exclude, restrict
):
    _, model, _ = _env()
    rng = np.random.default_rng(pool_seed)
    if restrict:
        pools = [
            rng.choice(model.n_items, size=int(rng.integers(0, 40)), replace=False)
            for _ in batch
        ]
    else:
        pools = [None] * len(batch)
    batched = model.recommend_batch(
        batch, pools, k=k, exclude_context_items=exclude
    )
    assert len(batched) == len(batch)
    for context, pool, recs in zip(batch, pools, batched):
        reference = model.recommend(
            context, k=k, candidates=pool, exclude_context_items=exclude
        )
        _assert_same_recs(recs, reference)


def test_recommend_batch_empty_candidate_sets():
    _, model, _ = _env()
    ctx = UserContext((0,), (EventType.VIEW,))
    results = model.recommend_batch([ctx, ctx], [[], [5, 9]], k=3)
    assert results[0] == []
    assert [s.item_index for s in results[1]] == [
        s.item_index for s in model.recommend(ctx, k=3, candidates=[5, 9])
    ]


def test_recommend_batch_length_mismatch_raises():
    _, model, _ = _env()
    ctx = UserContext((0,), (EventType.VIEW,))
    with pytest.raises(ValueError, match="candidate lists"):
        model.recommend_batch([ctx], [[1], [2]])


def test_recommend_batch_diverged_model_matches_per_item():
    dataset, model, selector = _env()
    diverged = copy.deepcopy(model)
    diverged.item_embeddings[:] = np.nan
    diverged.invalidate_cache()
    items = list(range(0, dataset.n_items, 7))
    contexts = [UserContext((i,), (EventType.VIEW,)) for i in items]
    pools = selector.batch_view_based(items)
    batched = diverged.recommend_batch(contexts, pools, k=5)
    for context, pool, recs in zip(contexts, pools, batched):
        _assert_same_recs(
            recs, diverged.recommend(context, k=5, candidates=pool)
        )


def test_exclude_items_preserves_candidate_order():
    """Regression: exclusion must filter, never sort, the candidate pool.

    Covers all three internal paths (single seen item, small broadcast
    compare, large ``np.isin``) with a deliberately unsorted pool.
    """
    pool = np.array([90, 3, 57, 12, 40, 3, 88, 1], dtype=np.int64)
    for n_seen in (1, 5, 20):
        seen = tuple(range(n_seen))
        context = UserContext(seen, tuple(EventType.VIEW for _ in seen))
        kept = _exclude_items(pool, context)
        expected = [p for p in pool.tolist() if p not in set(seen)]
        assert kept.tolist() == expected


# ----------------------------------------------------------------------
# batch candidate selection vs the per-item selectors
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    lca_k=st.integers(min_value=0, max_value=3),
    start=st.integers(min_value=0, max_value=119),
    stride=st.integers(min_value=1, max_value=9),
)
def test_property_batch_candidates_match_singular(lca_k, start, stride):
    dataset, _, selector = _env()
    items = list(range(start, dataset.n_items, stride))
    views = selector.batch_view_based(items, lca_k=lca_k)
    buys = selector.batch_purchase_based(items, lca_k=lca_k)
    for item, view, buy in zip(items, views, buys):
        assert view.tolist() == selector.view_based(item, lca_k=lca_k)
        assert buy.tolist() == selector.purchase_based(item, lca_k=lca_k)


def test_batch_view_based_same_facets_matches_singular():
    dataset, _, selector = _env()
    items = list(range(dataset.n_items))
    views = selector.batch_view_based(items, same_facets=("brand",))
    for item, view in zip(items, views):
        assert view.tolist() == selector.view_based(item, same_facets=("brand",))


def test_batch_candidates_exclude_self_and_respect_cap():
    dataset, _, selector = _env()
    items = list(range(dataset.n_items))
    for item, candidates in zip(items, selector.batch_view_based(items)):
        assert item not in candidates
        assert candidates.size <= selector.max_candidates


# ----------------------------------------------------------------------
# batched evaluator vs the per-example loop
# ----------------------------------------------------------------------
def test_exact_evaluator_batched_matches_loop():
    dataset, model, _ = _env()
    batched = HoldoutEvaluator(dataset, batched=True).evaluate(
        model, force_exact=True
    )
    loop = HoldoutEvaluator(dataset, batched=False).evaluate(
        model, force_exact=True
    )
    assert batched.ranks == loop.ranks
    assert batched.metrics == loop.metrics


def test_sampled_evaluator_batched_matches_loop():
    dataset, model, _ = _env()
    batched = HoldoutEvaluator(dataset, batched=True, seed=77).evaluate(
        model, force_sampled=True
    )
    loop = HoldoutEvaluator(dataset, batched=False, seed=77).evaluate(
        model, force_sampled=True
    )
    assert batched.sampled and loop.sampled
    assert batched.ranks == loop.ranks


def test_sampled_evaluator_chunking_is_invisible(monkeypatch):
    """Chunk-boundary placement must not change a single rank."""
    dataset, model, _ = _env()
    baseline = HoldoutEvaluator(dataset, batched=True, seed=5).evaluate(
        model, force_sampled=True
    )
    monkeypatch.setattr("repro.evaluation.sampled._CHUNK_EXAMPLES", 3)
    chunked = HoldoutEvaluator(dataset, batched=True, seed=5).evaluate(
        model, force_sampled=True
    )
    assert chunked.ranks == baseline.ranks


def test_evaluator_diverged_model_ranks_worst_in_both_paths():
    dataset, model, _ = _env()
    diverged = copy.deepcopy(model)
    diverged.item_embeddings[:] = np.nan
    diverged.invalidate_cache()
    for force in ("exact", "sampled"):
        kwargs = {f"force_{force}": True}
        batched = HoldoutEvaluator(dataset, batched=True).evaluate(
            diverged, **kwargs
        )
        loop = HoldoutEvaluator(dataset, batched=False).evaluate(
            diverged, **kwargs
        )
        assert batched.ranks == loop.ranks
        assert all(rank == dataset.n_items for rank in batched.ranks)


def test_estimate_ranks_matches_estimate_rank_with_shared_sample():
    dataset, model, _ = _env()
    estimator = SampledRankEstimator(dataset.n_items, seed=9)
    sample = estimator.draw_sample()
    holdout = dataset.holdout[:25]
    contexts = [example.context for example in holdout]
    targets = [example.held_out_item for example in holdout]
    batched = estimator.estimate_ranks(model, contexts, targets, sample=sample)
    scalar = [
        estimator.estimate_rank(model, context, target, sample=sample)
        for context, target in zip(contexts, targets)
    ]
    assert batched == scalar


# ----------------------------------------------------------------------
# block-based InferencePipeline: equivalence + failure semantics
# ----------------------------------------------------------------------
def _pipeline_dataset(retailer_id, seed):
    return dataset_from_synthetic(
        generate_retailer(
            RetailerSpec(
                retailer_id=retailer_id,
                n_items=40,
                n_users=25,
                n_events=260,
                taxonomy_depth=2,
                taxonomy_fanout=3,
                seed=seed,
            )
        )
    )


def _publish(registry, dataset):
    model = BPRModel(
        dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=4, seed=2)
    )
    BPRTrainer(model, dataset, max_epochs=2, seed=5).train()
    registry.publish(
        TrainedModel(
            model=model,
            output=OutputConfigRecord(
                config=ConfigRecord(dataset.retailer_id, 0, model.params),
                metrics={"map@10": 0.5},
            ),
        )
    )


@pytest.fixture(scope="module")
def pipeline_fleet():
    datasets = {
        "blk_a": _pipeline_dataset("blk_a", seed=21),
        "blk_b": _pipeline_dataset("blk_b", seed=22),
    }
    registry = ModelRegistry()
    for dataset in datasets.values():
        _publish(registry, dataset)
    return datasets, registry


def _run_pipeline(datasets, registry, **kwargs):
    pipeline = InferencePipeline(
        build_cluster(n_cells=1, machines_per_cell=4),
        registry,
        top_n=5,
        **kwargs,
    )
    return pipeline, *pipeline.run(datasets)


def test_item_blocks_cover_catalog_contiguously():
    blocks = _item_blocks(10, 4)
    assert blocks == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]
    assert _item_blocks(0, 4) == []


def test_block_size_does_not_change_recommendations(pipeline_fleet):
    """Blocked records pick the same items in the same order as 1-item
    records (scores agree to float tolerance: gemm vs gemv round-off)."""
    datasets, registry = pipeline_fleet
    _, blocked, _ = _run_pipeline(datasets, registry, block_size=16)
    _, single, _ = _run_pipeline(datasets, registry, block_size=1)
    assert blocked.keys() == single.keys()
    for rid in blocked:
        for surface in ("view_recs", "purchase_recs"):
            table_b = getattr(blocked[rid], surface)
            table_s = getattr(single[rid], surface)
            assert table_b.keys() == table_s.keys()
            for item in table_b:
                _assert_same_recs(table_b[item], table_s[item])


def test_dead_lettered_block_degrades_only_its_retailer(pipeline_fleet):
    datasets, registry = pipeline_fleet
    plan = FaultPlan().fail_mapper(
        lambda r: isinstance(r, tuple) and r[0] == "blk_a"
    )
    _, results, stats = _run_pipeline(
        datasets, registry, block_size=16, fault_plan=plan
    )
    assert stats.failed_retailers == ["blk_a"]
    assert "blk_a" not in results
    assert "blk_a" in stats.failure_reasons
    # The healthy retailer still publishes a complete table.
    assert len(results["blk_b"].view_recs) == datasets["blk_b"].n_items


def test_one_poisoned_block_degrades_whole_retailer(pipeline_fleet):
    """A single bad block means a partial table: the retailer degrades."""
    datasets, registry = pipeline_fleet
    plan = FaultPlan().fail_mapper(
        lambda r: isinstance(r, tuple) and r[0] == "blk_a" and 0 in r[1]
    )
    _, results, stats = _run_pipeline(
        datasets, registry, block_size=16, fault_plan=plan
    )
    assert stats.failed_retailers == ["blk_a"]
    assert "blk_a" not in results
    assert "blk_b" in results


def test_transient_attempt_fault_is_retried_not_degraded(pipeline_fleet):
    """Task-attempt faults (preemption-style) retry; blocks survive."""
    datasets, registry = pipeline_fleet
    plan = FaultPlan().fail_attempts(
        lambda r: isinstance(r, tuple) and r[0] == "blk_a", failures=1
    )
    _, results, stats = _run_pipeline(
        datasets, registry, block_size=16, fault_plan=plan
    )
    assert stats.failed_retailers == []
    assert len(results["blk_a"].view_recs) == datasets["blk_a"].n_items


def test_selector_cache_reused_across_days(pipeline_fleet):
    datasets, registry = pipeline_fleet
    pipeline, _, _ = _run_pipeline(datasets, registry, block_size=16)
    first = {
        rid: entry[2] for rid, entry in pipeline._selector_cache.items()
    }
    pipeline.run(datasets, day=1)
    for rid, selector in pipeline._selector_cache.items():
        assert selector[2] is first[rid], "selector must be reused day-over-day"
    # A replaced dataset object invalidates only its own entry.
    replaced = dict(datasets)
    replaced["blk_a"] = _pipeline_dataset("blk_a", seed=21)
    pipeline.run(replaced, day=2)
    assert pipeline._selector_cache["blk_a"][2] is not first["blk_a"]
    assert pipeline._selector_cache["blk_b"][2] is first["blk_b"]
