"""Property tests for the metrics substrate (repro.obs.metrics).

The crash-recovery parity guarantee rests on snapshot merging being
associative and commutative, and on histogram observation counts being
conserved under merge — so those are property-tested here with
hypothesis rather than spot-checked.  The null registry's no-op
contract (what keeps benchmarks fixed when observability is off) is
verified too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_METRICS,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    merge_snapshots,
    metric_key,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(["a_total", "b_total", "c_seconds", "d_items"])
_VALUES = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_BUCKETS = (1.0, 10.0, 100.0)


@st.composite
def snapshots(draw) -> MetricsSnapshot:
    counters = draw(
        st.dictionaries(_NAMES, _VALUES, max_size=4)
    )
    gauges = draw(
        st.dictionaries(st.sampled_from(["g1", "g2"]), _VALUES, max_size=2)
    )
    histograms = {}
    for key in draw(st.sets(st.sampled_from(["h1", "h2"]), max_size=2)):
        counts = draw(
            st.lists(
                st.integers(min_value=0, max_value=50),
                min_size=len(_BUCKETS) + 1,
                max_size=len(_BUCKETS) + 1,
            )
        )
        histograms[key] = {
            "buckets": _BUCKETS,
            "counts": counts,
            "sum": draw(_VALUES),
        }
    return MetricsSnapshot(counters, gauges, histograms)


# ----------------------------------------------------------------------
# Merge algebra
# ----------------------------------------------------------------------
class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=snapshots(), b=snapshots())
    def test_merge_commutative(self, a, b):
        left = a.merge(b).to_dict()
        right = b.merge(a).to_dict()
        assert left["counters"] == pytest.approx(right["counters"])
        assert left["gauges"] == right["gauges"]
        assert left["histograms"].keys() == right["histograms"].keys()
        for key in left["histograms"]:
            assert (
                left["histograms"][key]["counts"]
                == right["histograms"][key]["counts"]
            )
            assert left["histograms"][key]["sum"] == pytest.approx(
                right["histograms"][key]["sum"]
            )

    @settings(max_examples=60, deadline=None)
    @given(a=snapshots(), b=snapshots(), c=snapshots())
    def test_merge_associative(self, a, b, c):
        left = a.merge(b).merge(c).to_dict()
        right = a.merge(b.merge(c)).to_dict()
        assert left["counters"] == pytest.approx(right["counters"])
        assert left["gauges"] == right["gauges"]
        for key in left["histograms"]:
            assert (
                left["histograms"][key]["counts"]
                == right["histograms"][key]["counts"]
            )

    @settings(max_examples=60, deadline=None)
    @given(a=snapshots(), b=snapshots())
    def test_histogram_counts_conserved(self, a, b):
        merged = a.merge(b)
        for key, hist in merged.histograms.items():
            expected = sum(a.histograms.get(key, {}).get("counts", []))
            expected += sum(b.histograms.get(key, {}).get("counts", []))
            assert sum(hist["counts"]) == expected

    @settings(max_examples=40, deadline=None)
    @given(a=snapshots())
    def test_empty_is_identity(self, a):
        empty = MetricsSnapshot()
        assert empty.merge(a) == a
        assert a.merge(empty) == a

    @settings(max_examples=40, deadline=None)
    @given(a=snapshots(), b=snapshots())
    def test_merge_does_not_mutate_inputs(self, a, b):
        before_a, before_b = a.to_dict(), b.to_dict()
        a.merge(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b

    def test_bucket_schema_mismatch_raises(self):
        a = MetricsSnapshot(
            histograms={"h": {"buckets": (1.0, 2.0), "counts": [0, 0, 0], "sum": 0.0}}
        )
        b = MetricsSnapshot(
            histograms={"h": {"buckets": (1.0, 3.0), "counts": [0, 0, 0], "sum": 0.0}}
        )
        with pytest.raises(MetricsError):
            a.merge(b)

    @settings(max_examples=30, deadline=None)
    @given(parts=st.lists(snapshots(), max_size=4))
    def test_merge_snapshots_equals_pairwise_fold(self, parts):
        folded = MetricsSnapshot()
        for part in parts:
            folded = folded.merge(part)
        assert merge_snapshots(parts) == folded

    @settings(max_examples=30, deadline=None)
    @given(parts=st.lists(snapshots(), max_size=4))
    def test_fold_matches_merge(self, parts):
        """Registry.fold over task snapshots == pure snapshot merging."""
        registry = MetricsRegistry()
        for part in parts:
            registry.fold(part)
        merged = merge_snapshots(parts)
        got = registry.snapshot().to_dict()
        want = merged.to_dict()
        assert got["counters"] == pytest.approx(want["counters"])
        assert got["gauges"] == want["gauges"]
        for key in want["histograms"]:
            assert (
                got["histograms"][key]["counts"]
                == want["histograms"][key]["counts"]
            )


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", retailer="r0")
        counter.inc()
        counter.inc(2.5)
        assert registry.snapshot().counter("x_total", retailer="r0") == 3.5

    @settings(max_examples=30, deadline=None)
    @given(amount=st.floats(max_value=-1e-9, min_value=-1e9))
    def test_negative_increment_raises(self, amount):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("x_total").inc(amount)

    def test_gauge_keeps_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("peak")
        gauge.set(3.0)
        gauge.set(1.0)  # lower write does not regress the high-watermark
        assert registry.snapshot().gauge("peak") == 3.0

    def test_instruments_memoized_by_series(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a="1", b="2") is registry.counter(
            "x", b="2", a="1"
        )
        assert registry.counter("x", a="1") is not registry.counter("x", a="2")

    def test_histogram_observe_and_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        # upper bounds are inclusive (bisect_left): 1.0 lands in bucket 0
        assert hist.counts == [2, 1, 1]
        assert hist.sum == pytest.approx(106.5)

    def test_histogram_invalid_buckets_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("bad", buckets=())
        with pytest.raises(MetricsError):
            registry.histogram("bad2", buckets=(2.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("bad3", buckets=(1.0, 1.0))

    def test_histogram_reregistration_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        registry.histogram("lat", buckets=(1.0, 2.0))  # same schema is fine
        with pytest.raises(MetricsError):
            registry.histogram("lat", buckets=(1.0, 3.0))

    def test_default_buckets_are_valid(self):
        MetricsRegistry().histogram("d", buckets=DEFAULT_BUCKETS).observe(5.0)

    def test_metric_key_sorts_labels(self):
        assert metric_key("x", {}) == "x"
        assert metric_key("x", {"b": "2", "a": "1"}) == "x{a=1,b=2}"

    def test_zero_valued_series_kept_in_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("seen_total", retailer="r0")  # never incremented
        snap = registry.snapshot()
        assert "seen_total{retailer=r0}" in snap.counters
        assert snap.counter("seen_total", retailer="r0") == 0.0

    def test_counter_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("x_total", retailer="r0").inc(2)
        registry.counter("x_total", retailer="r1").inc(3)
        registry.counter("x_total_other").inc(100)  # prefix must not match
        assert registry.snapshot().counter_total("x_total") == 5.0


# ----------------------------------------------------------------------
# Snapshot export
# ----------------------------------------------------------------------
class TestSnapshotExport:
    @settings(max_examples=30, deadline=None)
    @given(a=snapshots())
    def test_json_roundtrip_byte_stable(self, a):
        copy = MetricsSnapshot(a.counters, a.gauges, a.histograms)
        assert a == copy
        assert a.to_json() == copy.to_json()

    def test_eq_against_other_types(self):
        assert MetricsSnapshot() != object()
        assert MetricsSnapshot() == MetricsSnapshot()


# ----------------------------------------------------------------------
# Null registry: the zero-overhead disabled mode
# ----------------------------------------------------------------------
class TestNullRegistry:
    def test_all_instruments_are_the_shared_noop(self):
        registry = NullMetricsRegistry()
        assert registry.counter("x", retailer="r0") is NULL_INSTRUMENT
        assert registry.gauge("g") is NULL_INSTRUMENT
        assert registry.histogram("h", buckets=(1.0,)) is NULL_INSTRUMENT
        assert NULL_METRICS.counter("y") is NULL_INSTRUMENT

    def test_noop_mutators_accept_everything(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.inc(-5.0)  # no contract checks when disabled
        NULL_INSTRUMENT.set(3.0)
        NULL_INSTRUMENT.observe(1.0)

    def test_snapshot_empty_and_fold_noop(self):
        loaded = MetricsSnapshot(counters={"x": 5.0})
        NULL_METRICS.fold(loaded)
        snap = NULL_METRICS.snapshot()
        assert snap.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NULL_METRICS.enabled is False


# ----------------------------------------------------------------------
# Fleet fold: per-worker registries folded into the day registry
# ----------------------------------------------------------------------
_OBSERVATIONS = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.sampled_from(["train_total", "peak_rss", "epoch_seconds"]),
        _VALUES,
    ),
    max_size=24,
)


def _apply(registry: MetricsRegistry, observations) -> None:
    for kind, name, value in observations:
        if kind == "counter":
            registry.counter(name + "_c").inc(value)
        elif kind == "gauge":
            registry.gauge(name + "_g").set(value)
        else:
            registry.histogram(name + "_h", buckets=_BUCKETS).observe(value)


class TestFleetWorkerFold:
    """The fleet runs each Train() task against a fresh per-worker
    MetricsRegistry and folds the shipped snapshots into the coordinator's
    day registry.  Worker placement must not change the sealed day: any
    partition of the observation stream across workers has to fold to the
    same snapshot a serial registry would produce."""

    @settings(max_examples=30, deadline=None)
    @given(observations=_OBSERVATIONS, n_workers=st.integers(1, 4))
    def test_worker_partition_folds_to_serial_registry(
        self, observations, n_workers
    ):
        serial = MetricsRegistry()
        _apply(serial, observations)

        day = MetricsRegistry()
        for worker in range(n_workers):
            per_worker = MetricsRegistry()  # fresh registry per task/worker
            _apply(per_worker, observations[worker::n_workers])
            day.fold(per_worker.snapshot())

        got = day.snapshot().to_dict()
        want = serial.snapshot().to_dict()
        assert got["counters"] == pytest.approx(want["counters"])
        assert got["gauges"] == want["gauges"]
        assert got["histograms"].keys() == want["histograms"].keys()
        for key, hist in want["histograms"].items():
            assert got["histograms"][key]["counts"] == hist["counts"]
            assert got["histograms"][key]["sum"] == pytest.approx(hist["sum"])

    def test_fold_order_is_irrelevant(self):
        parts = []
        for worker in range(3):
            registry = MetricsRegistry()
            registry.counter("tasks_total", worker=str(worker)).inc(worker + 1)
            registry.counter("tasks_total").inc(1)
            parts.append(registry.snapshot())

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            forward.fold(part)
        for part in reversed(parts):
            backward.fold(part)
        assert forward.snapshot() == backward.snapshot()
