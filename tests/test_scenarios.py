"""Tests for the chaos scenario engine and the six catalog drills."""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.exceptions import SigmundError
from repro.scenarios import (
    FAST_SCENARIOS,
    SCENARIOS,
    AvailabilityFloor,
    BucketCeiling,
    CTRInvariance,
    P99Bound,
    ScenarioEvent,
    event,
    get_scenario,
    run_scenario,
    scenario_names,
    strip_adversarial,
)
from repro.scenarios.engine import DayStats, Scenario, ScenarioResult


@lru_cache(maxsize=None)
def protected_result(name: str) -> "ScenarioResult":
    """One shared protected run per scenario (tests only read it)."""
    return run_scenario(get_scenario(name), protected=True)


@lru_cache(maxsize=None)
def unprotected_result(name: str) -> "ScenarioResult":
    return run_scenario(get_scenario(name), protected=False)


def day(n, requests=100, p99=5.0, availability=1.0, **buckets):
    base = {
        "cache": 0, "coalesced": 0, "fresh": requests, "stale": 0,
        "fallback": 0, "shed": 0, "empty": 0,
    }
    base.update(buckets)
    base["fresh"] = requests - sum(
        v for k, v in base.items() if k != "fresh"
    )
    return DayStats(
        day=n, requests=requests, buckets=base, p50_ms=1.0, p99_ms=p99,
        availability=availability, organic_requests=requests,
        organic_clicks=10, max_queue_wait_ms=0.0, breaker_transitions=0,
        open_breakers=0, shed=base["shed"], deadline_truncated=0,
    )


def result_with(days):
    scenario = Scenario(
        name="synthetic", description="", seed=1, days=len(days),
        retailer_items=(10,),
    )
    return ScenarioResult(
        scenario=scenario, protected=True, day_stats=days, seals=[],
        monitor=None,
    )


class TestEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SigmundError):
            event(1, "meteor_strike")

    def test_day_must_be_positive(self):
        with pytest.raises(SigmundError):
            ScenarioEvent(day=0, kind="clear_boosts")

    def test_param_access(self):
        ev = event(2, "boost_retailer", retailer_id="r00", factor=10.0)
        assert ev.require("factor") == 10.0
        assert ev.get("missing", 7) == 7
        with pytest.raises(SigmundError):
            ev.require("absent")

    def test_strip_adversarial_removes_floods_only(self):
        events = (
            event(1, "set_qps", qps=10.0),
            event(2, "bot_flood", retailer_id="r00", n_bots=1, requests=10),
            event(3, "fail_node", node_id=0),
        )
        stripped = strip_adversarial(events)
        assert [e.kind for e in stripped] == ["set_qps", "fail_node"]


class TestChecks:
    def test_availability_floor_picks_worst_day(self):
        result = result_with([
            day(1, availability=1.0), day(2, availability=0.9),
        ])
        outcome = AvailabilityFloor(0.99).evaluate(result)
        assert not outcome.passed
        assert outcome.observed == 0.9

    def test_p99_bound_picks_worst_day(self):
        result = result_with([day(1, p99=3.0), day(2, p99=30.0)])
        outcome = P99Bound(25.0).evaluate(result)
        assert not outcome.passed and outcome.observed == 30.0
        assert P99Bound(25.0, days=(1,)).evaluate(result).passed

    def test_bucket_ceiling(self):
        result = result_with([day(1, requests=100, shed=60)])
        assert not BucketCeiling("shed", 0.5).evaluate(result).passed
        assert BucketCeiling("shed", 0.7).evaluate(result).passed

    def test_ctr_invariance_requires_control(self):
        result = result_with([day(1)])
        with pytest.raises(SigmundError):
            CTRInvariance(0.01).evaluate(result)

    def test_check_referencing_missing_day_raises(self):
        result = result_with([day(1)])
        with pytest.raises(SigmundError):
            P99Bound(25.0, days=(9,)).evaluate(result)


class TestScenarioValidation:
    def test_event_past_last_day_rejected(self):
        with pytest.raises(SigmundError):
            Scenario(
                name="bad", description="", seed=1, days=2,
                retailer_items=(10,),
                events=(event(3, "clear_boosts"),),
            )

    def test_unknown_scenario_name(self):
        with pytest.raises(SigmundError):
            get_scenario("does_not_exist")

    def test_catalog_lists_six(self):
        assert len(scenario_names()) == 6
        assert set(FAST_SCENARIOS) <= set(scenario_names())


class TestCatalogProtected:
    """Every drill passes protected, and reruns are byte-deterministic."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_passes_protected_and_rerun_identical(self, name):
        first = protected_result(name)
        verdict = first.verdict()
        assert verdict["passed"], [
            c for c in verdict["checks"] if not c["passed"]
        ]
        second = run_scenario(get_scenario(name), protected=True)
        assert first.verdict_json() == second.verdict_json()

    def test_conservation_enforced_every_day(self):
        result = protected_result("flash_sale")
        for stats in result.day_stats:
            assert sum(stats.buckets.values()) == stats.requests
            assert result.monitor.serving_window(stats.day) is not None


class TestCatalogUnprotected:
    """The point of the bench: protection off demonstrably fails."""

    @pytest.mark.parametrize(
        "name", ["flash_sale", "bot_flood", "cell_outage"]
    )
    def test_fails_unprotected(self, name):
        result = unprotected_result(name)
        verdict = result.verdict()
        assert not verdict["passed"]
        failed = {c["name"] for c in verdict["checks"] if not c["passed"]}
        assert any(n.startswith("p99") for n in failed) or any(
            n.startswith("ctr") for n in failed
        )

    def test_bot_flood_moves_ctr_unprotected(self):
        result = unprotected_result("bot_flood")
        assert result.control_ctr is not None
        assert abs(result.organic_ctr - result.control_ctr) > 0.015

    def test_bot_flood_ctr_invariant_protected(self):
        result = protected_result("bot_flood")
        assert abs(result.organic_ctr - result.control_ctr) <= 0.015


class TestSealedVerdicts:
    def test_checks_read_only_sealed_days(self):
        result = protected_result("seasonal_drift")
        assert len(result.seals) == result.scenario.days
        for seal, stats in zip(result.seals, result.day_stats):
            assert "counters" in seal and "gauges" in seal
            assert stats.requests == int(
                sum(
                    v for k, v in seal["counters"].items()
                    if k.startswith("frontend_requests_total")
                )
            )
        # The monitor pinned each seal as the day snapshot.
        for stats in result.day_stats:
            assert result.monitor.day_snapshot(stats.day) is not None

    def test_skipped_publish_surfaces_as_stale_then_clears(self):
        result = protected_result("seasonal_drift")
        by_day = {d.day: d for d in result.day_stats}
        assert by_day[3].buckets["stale"] > 0
        assert by_day[4].buckets["stale"] == 0

    def test_onboarding_serves_fallback_then_tables(self):
        result = protected_result("onboarding")
        by_day = {d.day: d for d in result.day_stats}
        assert by_day[2].buckets["fallback"] > 0
        assert by_day[4].buckets["fallback"] == 0
        assert by_day[4].buckets["empty"] == 0

    def test_cell_outage_breakers_trip_and_close(self):
        result = protected_result("cell_outage")
        assert sum(d.breaker_transitions for d in result.day_stats) >= 4
        assert result.day_stats[-1].open_breakers == 0
