"""Failure-injection tests: pre-emption, checkpoint recovery, retries.

The design's resilience claims, exercised end to end: a training task
killed mid-run resumes from its latest checkpoint without losing more
than one interval of work; the MapReduce runtime retries pre-empted
tasks to completion; the serving store survives a failed (stale) load.
"""

from __future__ import annotations

import pytest

from repro.cluster.preemption import PreemptionModel
from repro.core.checkpoint import CheckpointManager
from repro.exceptions import MapReduceError, ServingError
from repro.mapreduce.runtime import MapReduceJob, MapReduceRuntime
from repro.mapreduce.splits import uniform_splits
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer
from repro.serving.store import RecommendationStore
from repro.models.base import ScoredItem


class TestTrainingRecovery:
    def test_resume_from_checkpoint_preserves_progress(self, small_dataset):
        """Kill training mid-way, restore into a fresh process, finish."""
        params = BPRHyperParams(n_factors=8, learning_rate=0.08, seed=2)
        manager = CheckpointManager(interval_seconds=1.0)

        # First "process": train 3 epochs, checkpointing after each.
        first = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        trainer = BPRTrainer(first, small_dataset, max_epochs=3,
                             convergence_tol=0.0, seed=3)
        now = 0.0
        for epoch, _ in trainer.iter_epochs():
            now += 10.0
            manager.maybe_checkpoint("job", first, now, epoch)
        losses_before_kill = trainer.run_epoch()  # progress we'll lose
        del trainer  # pre-emption: process gone, last epoch lost

        # Second "process": fresh model, restore, continue.
        second = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        restored_epoch = manager.restore("job", second)
        assert restored_epoch == 2
        # The restored model performs like the checkpointed one, not like
        # a random init: its training loss continues from a low level.
        resumed = BPRTrainer(second, small_dataset, max_epochs=1,
                             convergence_tol=0.0, seed=4)
        resumed_loss = resumed.run_epoch()
        fresh = BPRModel(small_dataset.catalog, small_dataset.taxonomy,
                         BPRHyperParams(n_factors=8, seed=99))
        fresh_trainer = BPRTrainer(fresh, small_dataset, max_epochs=1,
                                   convergence_tol=0.0, seed=4)
        fresh_loss = fresh_trainer.run_epoch()
        assert resumed_loss < fresh_loss, (
            "resuming from a checkpoint must beat restarting from scratch"
        )
        assert resumed_loss <= losses_before_kill * 1.5

    def test_restore_after_gc_uses_latest_only(self, small_dataset):
        params = BPRHyperParams(n_factors=4, seed=5)
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        manager = CheckpointManager(interval_seconds=1.0)
        model.item_bias[0] = 1.0
        manager.write("job", model, now=0.0, epoch=0)
        model.item_bias[0] = 2.0
        manager.write("job", model, now=10.0, epoch=1)
        model.item_bias[0] = -1.0
        assert manager.restore("job", model) == 1
        assert model.item_bias[0] == 2.0
        assert manager.stored_count == 1


class TestMapReduceRetries:
    def test_hostile_preemption_still_completes(self):
        hostile = PreemptionModel(preemptible_mean_uptime_hours=0.02)
        runtime = MapReduceRuntime(preemption_model=hostile, seed=6)
        job = MapReduceJob(
            name="retry",
            mapper=lambda r: [(0, r)],
            reducer=lambda key, values: [sum(values)],
            record_cost_fn=lambda r: 20.0,
        )
        outputs, stats = runtime.run(job, uniform_splits([1] * 10, 5))
        assert outputs == [10]
        assert stats.preemptions > 0

    def test_impossible_task_fails_loudly(self):
        """A task longer than any plausible uptime exhausts retries."""
        impossible = PreemptionModel(preemptible_mean_uptime_hours=1e-4)
        runtime = MapReduceRuntime(preemption_model=impossible, seed=7)
        job = MapReduceJob(
            name="doomed",
            mapper=lambda r: [(0, r)],
            record_cost_fn=lambda r: 3600.0,
        )
        with pytest.raises(MapReduceError):
            runtime.run(job, uniform_splits([1], 1))


class TestServingResilience:
    def test_stale_load_leaves_store_intact(self):
        store = RecommendationStore()
        store.load_batch("r", {0: [ScoredItem(1, 1.0)]}, version=5)
        with pytest.raises(ServingError):
            store.load_batch("r", {0: []}, version=5)
        # The failed load changed nothing.
        assert store.version_of("r") == 5
        assert [r.item_index for r in store.lookup("r", 0)] == [1]

    def test_retailer_failures_isolated(self):
        """A bad batch for one retailer never touches another's data."""
        store = RecommendationStore()
        store.load_batch("a", {0: [ScoredItem(1, 1.0)]}, version=1)
        store.load_batch("b", {0: [ScoredItem(2, 1.0)]}, version=1)
        with pytest.raises(ServingError):
            store.load_batch("a", {}, version=0)
        assert [r.item_index for r in store.lookup("b", 0)] == [2]
