"""Tests for config records and the per-retailer grid search."""

from __future__ import annotations

import pytest

from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.grid import (
    GridSpec,
    applicable_factor_counts,
    feature_switch_axes,
    generate_configs,
)
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams


class TestConfigRecord:
    def test_key(self):
        record = ConfigRecord("r7", 3, BPRHyperParams())
        assert record.key == "r7/m3"

    def test_validation(self):
        with pytest.raises(ConfigError):
            ConfigRecord("", 0, BPRHyperParams())
        with pytest.raises(ConfigError):
            ConfigRecord("r", -1, BPRHyperParams())

    def test_for_day(self):
        record = ConfigRecord("r", 1, BPRHyperParams())
        reissued = record.for_day(5, warm_start=True)
        assert reissued.day == 5
        assert reissued.warm_start
        assert reissued.model_number == record.model_number
        assert reissued.params is record.params


class TestOutputRecord:
    def output(self, retailer="r", number=0, map10=0.5):
        return OutputConfigRecord(
            config=ConfigRecord(retailer, number, BPRHyperParams()),
            metrics={"map@10": map10},
        )

    def test_map_accessor(self):
        assert self.output(map10=0.25).map_at_10 == 0.25
        assert OutputConfigRecord(
            config=ConfigRecord("r", 0, BPRHyperParams())
        ).map_at_10 == 0.0

    def test_better_than_by_map(self):
        assert self.output(map10=0.6).better_than(self.output(map10=0.5))
        assert not self.output(map10=0.4).better_than(self.output(map10=0.5))

    def test_better_than_ties_break_by_model_number(self):
        a = self.output(number=1, map10=0.5)
        b = self.output(number=2, map10=0.5)
        assert a.better_than(b)
        assert not b.better_than(a)

    def test_better_than_none(self):
        assert self.output().better_than(None)


class TestGrid:
    def test_small_grid_size(self, small_dataset):
        configs = generate_configs(small_dataset, GridSpec.small())
        assert 1 <= len(configs) <= 16
        assert len({c.model_number for c in configs}) == len(configs)

    def test_cross_product_capped(self, small_dataset):
        grid = GridSpec(max_configs=10)
        configs = generate_configs(small_dataset, grid)
        assert len(configs) == 10

    def test_deterministic(self, small_dataset):
        grid = GridSpec(max_configs=20)
        a = generate_configs(small_dataset, grid)
        b = generate_configs(small_dataset, grid)
        assert [c.params for c in a] == [c.params for c in b]

    def test_distinct_seeds_per_model(self, small_dataset):
        configs = generate_configs(small_dataset, GridSpec.small())
        seeds = {c.params.seed for c in configs}
        assert len(seeds) == len(configs)

    def test_factor_counts_scale_with_catalog(self):
        grid = GridSpec()
        assert 200 in applicable_factor_counts(grid, 20000)
        small = applicable_factor_counts(grid, 30)
        assert max(small) <= 15
        assert 5 in small

    def test_tiny_catalog_keeps_minimum(self):
        grid = GridSpec(n_factors=(50, 100))
        assert applicable_factor_counts(grid, 10) == (50,)

    def test_brand_feature_forced_off_at_low_coverage(self):
        """Paper: <10% brand coverage makes the feature detrimental."""
        retailer = generate_retailer(
            RetailerSpec(
                retailer_id="lowbrand", n_items=60, n_users=20, n_events=200,
                brand_coverage=0.05, seed=3,
            )
        )
        dataset = dataset_from_synthetic(retailer)
        grid = GridSpec(use_brand=(True, False))
        _, brand_axis, _ = feature_switch_axes(grid, dataset)
        assert brand_axis == (False,)
        configs = generate_configs(dataset, grid)
        assert all(not c.params.use_brand for c in configs)

    def test_brand_feature_searched_at_high_coverage(self, small_dataset):
        grid = GridSpec(use_brand=(True, False))
        _, brand_axis, _ = feature_switch_axes(grid, small_dataset)
        assert set(brand_axis) == {True, False}

    def test_invalid_grid(self):
        with pytest.raises(ConfigError):
            GridSpec(max_configs=0)
        with pytest.raises(ConfigError):
            GridSpec(n_factors=())

    def test_day_propagates(self, small_dataset):
        configs = generate_configs(small_dataset, GridSpec.small(), day=7)
        assert all(c.day == 7 for c in configs)
