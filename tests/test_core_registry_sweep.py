"""Tests for the model registry (isolation!) and sweep planning."""

from __future__ import annotations

import pytest

from repro.core.config import ConfigRecord, OutputConfigRecord
from repro.core.grid import GridSpec
from repro.core.registry import ModelRegistry, TrainedModel
from repro.core.sweep import SweepPlanner
from repro.exceptions import IsolationError, ModelNotTrainedError
from repro.models.bpr import BPRHyperParams, BPRModel


def entry(dataset, number=0, map10=0.5, day=0) -> TrainedModel:
    model = BPRModel(
        dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=4, seed=number)
    )
    output = OutputConfigRecord(
        config=ConfigRecord(dataset.retailer_id, number, model.params, day=day),
        metrics={"map@10": map10},
    )
    return TrainedModel(model=model, output=output)


class TestRegistry:
    def test_publish_and_get(self, small_dataset):
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 0, 0.4))
        fetched = registry.get(small_dataset.retailer_id, 0)
        assert fetched.map_at_10 == 0.4

    def test_get_missing_raises(self, small_dataset):
        registry = ModelRegistry()
        with pytest.raises(ModelNotTrainedError):
            registry.get("ghost", 0)
        registry.publish(entry(small_dataset, 0))
        with pytest.raises(ModelNotTrainedError):
            registry.get(small_dataset.retailer_id, 99)

    def test_publish_wrong_retailer_isolated(self, small_dataset, tiny_dataset):
        registry = ModelRegistry()
        bad = entry(small_dataset, 0)
        bad.output = OutputConfigRecord(
            config=ConfigRecord(tiny_dataset.retailer_id, 0, bad.model.params)
        )
        with pytest.raises(IsolationError):
            registry.publish(bad)

    def test_assert_isolated(self):
        registry = ModelRegistry()
        registry.assert_isolated("a", "a")
        with pytest.raises(IsolationError):
            registry.assert_isolated("a", "b")

    def test_best_and_top_k(self, small_dataset):
        registry = ModelRegistry()
        for number, map10 in enumerate([0.2, 0.8, 0.5, 0.6]):
            registry.publish(entry(small_dataset, number, map10))
        rid = small_dataset.retailer_id
        assert registry.best(rid).model_number == 1
        assert [m.model_number for m in registry.top_k(rid, 3)] == [1, 3, 2]

    def test_top_k_tie_break_stable(self, small_dataset):
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 5, 0.5))
        registry.publish(entry(small_dataset, 2, 0.5))
        assert registry.top_k(small_dataset.retailer_id, 2)[0].model_number == 2

    def test_republish_overwrites(self, small_dataset):
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 0, 0.3))
        registry.publish(entry(small_dataset, 0, 0.9))
        assert registry.best(small_dataset.retailer_id).map_at_10 == 0.9
        assert registry.model_count(small_dataset.retailer_id) == 1

    def test_drop_retailer(self, small_dataset):
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 0))
        registry.drop_retailer(small_dataset.retailer_id)
        assert not registry.has_models(small_dataset.retailer_id)

    def test_latest_day(self, small_dataset):
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 0, day=0))
        registry.publish(entry(small_dataset, 1, day=3))
        assert registry.latest_day(small_dataset.retailer_id) == 3

    def test_model_count_global(self, small_dataset, tiny_dataset):
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 0))
        registry.publish(entry(tiny_dataset, 0))
        assert registry.model_count() == 2
        assert registry.retailers() == sorted(
            [small_dataset.retailer_id, tiny_dataset.retailer_id]
        )


class TestSweepPlanner:
    def test_full_sweep_covers_all_retailers(self, small_dataset, tiny_dataset):
        planner = SweepPlanner(GridSpec.small())
        plan = planner.full_sweep([small_dataset, tiny_dataset])
        assert set(plan.full_grid_retailers) == {
            small_dataset.retailer_id,
            tiny_dataset.retailer_id,
        }
        assert plan.configs_for(small_dataset.retailer_id)
        assert plan.configs_for(tiny_dataset.retailer_id)

    def test_incremental_uses_top_k(self, small_dataset):
        registry = ModelRegistry()
        for number, map10 in enumerate([0.1, 0.9, 0.5, 0.7]):
            registry.publish(entry(small_dataset, number, map10))
        planner = SweepPlanner(GridSpec.small(), top_k=2)
        plan = planner.incremental_sweep([small_dataset], registry, day=1)
        numbers = sorted(c.model_number for c in plan.configs)
        assert numbers == [1, 3]
        assert all(c.warm_start for c in plan.configs)
        assert all(c.day == 1 for c in plan.configs)

    def test_incremental_new_retailer_gets_full_grid(
        self, small_dataset, tiny_dataset
    ):
        """Paper IV-A: a new retailer in an incremental sweep trains all
        combinations for that retailer alone."""
        registry = ModelRegistry()
        registry.publish(entry(small_dataset, 0, 0.5))
        planner = SweepPlanner(GridSpec.small(), top_k=3)
        plan = planner.incremental_sweep(
            [small_dataset, tiny_dataset], registry, day=2
        )
        assert tiny_dataset.retailer_id in plan.full_grid_retailers
        assert small_dataset.retailer_id in plan.incremental_retailers
        new_configs = plan.configs_for(tiny_dataset.retailer_id)
        from repro.core.grid import generate_configs

        full_grid = generate_configs(tiny_dataset, GridSpec.small(), day=2)
        assert len(new_configs) == len(full_grid)
        assert all(not c.warm_start for c in new_configs)

    def test_permutation_is_deterministic_and_mixing(self, small_dataset, tiny_dataset):
        planner = SweepPlanner(GridSpec.small(), base_seed=5)
        plan_a = planner.full_sweep([small_dataset, tiny_dataset])
        plan_b = planner.full_sweep([small_dataset, tiny_dataset])
        assert [c.key for c in plan_a.configs] == [c.key for c in plan_b.configs]
        # The permutation should interleave retailers, not keep them blocked.
        retailer_sequence = [c.retailer_id for c in plan_a.configs]
        first_block = retailer_sequence[: len(retailer_sequence) // 2]
        assert len(set(first_block)) > 1

    def test_different_days_different_permutations(self, small_dataset, tiny_dataset):
        planner = SweepPlanner(GridSpec.small())
        day0 = planner.full_sweep([small_dataset, tiny_dataset], day=0)
        day1 = planner.full_sweep([small_dataset, tiny_dataset], day=1)
        assert [c.key for c in day0.configs] != [c.key for c in day1.configs]
