"""Tests for the online A/B experiment harness."""

from __future__ import annotations

import pytest

from repro.exceptions import DataError
from repro.models.popularity import PopularityModel
from repro.simulation.experiments import (
    ABExperiment,
    two_proportion_z_test,
)


def popularity_builder(dataset):
    return PopularityModel(dataset.n_items, dataset.train)


class TestZTest:
    def test_no_difference_high_p(self):
        z, p = two_proportion_z_test(50, 1000, 50, 1000)
        assert z == pytest.approx(0.0)
        assert p == pytest.approx(1.0)

    def test_large_difference_significant(self):
        z, p = two_proportion_z_test(50, 1000, 150, 1000)
        assert abs(z) > 5
        assert p < 1e-6

    def test_direction_of_z(self):
        z_up, _ = two_proportion_z_test(50, 1000, 100, 1000)
        z_down, _ = two_proportion_z_test(100, 1000, 50, 1000)
        assert z_up > 0 > z_down

    def test_degenerate_inputs(self):
        assert two_proportion_z_test(0, 0, 5, 10) == (0.0, 1.0)
        assert two_proportion_z_test(0, 10, 0, 10) == (0.0, 1.0)

    def test_small_sample_not_significant(self):
        _, p = two_proportion_z_test(1, 10, 2, 10)
        assert p > 0.05


class TestABExperiment:
    def test_arm_assignment_consistent_and_split(self):
        experiment = ABExperiment("control", "treatment", traffic_split=0.5)
        arms = [experiment.arm_of(user) for user in range(2000)]
        assert all(experiment.arm_of(user) == arms[user] for user in range(100))
        control_share = arms.count("control") / len(arms)
        assert 0.45 < control_share < 0.55

    def test_uneven_split(self):
        experiment = ABExperiment("c", "t", traffic_split=0.9)
        arms = [experiment.arm_of(user) for user in range(2000)]
        assert arms.count("c") / len(arms) > 0.85

    def test_invalid_split(self):
        with pytest.raises(DataError):
            ABExperiment("c", "t", traffic_split=1.0)

    def test_missing_builder_rejected(self, small_dataset):
        experiment = ABExperiment("c", "t")
        with pytest.raises(DataError):
            experiment.run([small_dataset], {"c": popularity_builder})

    def test_identical_arms_mostly_not_significant(self, small_dataset):
        """Same system in both arms: the lift is user-assignment noise.

        With few users the z-test's iid assumption is strained (clustered
        randomization), so we run several salted assignments and require
        the A/A test to come back non-significant in the majority.
        """
        insignificant = 0
        for salt in ("a", "b", "c", "d", "e"):
            experiment = ABExperiment("c", "t", salt=salt)
            result = experiment.run(
                [small_dataset],
                {"c": popularity_builder, "t": popularity_builder},
                requests_per_retailer=150,
                seed=3,
            )
            assert result.control.impressions > 0
            assert result.treatment.impressions > 0
            if not result.significant(alpha=0.01):
                insignificant += 1
        assert insignificant >= 3

    def test_better_arm_wins(self, small_dataset, trained_model):
        experiment = ABExperiment("popularity", "bpr")
        result = experiment.run(
            [small_dataset],
            {
                "popularity": popularity_builder,
                "bpr": lambda ds: trained_model,
            },
            requests_per_retailer=400,
            seed=4,
        )
        assert result.treatment.ctr > result.control.ctr
        assert result.lift > 0
        assert result.z_score > 0

    def test_users_counted_once_per_arm(self, small_dataset):
        experiment = ABExperiment("c", "t")
        result = experiment.run(
            [small_dataset],
            {"c": popularity_builder, "t": popularity_builder},
            requests_per_retailer=200,
            seed=5,
        )
        holdout_users = {ex.user_id for ex in small_dataset.holdout}
        assert result.control.users + result.treatment.users <= len(holdout_users)
