"""Tests for the synthetic retailer/marketplace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import dataset_from_synthetic
from repro.data.events import EventType, count_by_event
from repro.data.generator import (
    MarketplaceSpec,
    RetailerSpec,
    generate_marketplace,
    generate_retailer,
)
from repro.exceptions import DataError


class TestSpecValidation:
    def test_too_few_items_rejected(self):
        with pytest.raises(DataError):
            RetailerSpec(retailer_id="r", n_items=1)

    def test_no_users_rejected(self):
        with pytest.raises(DataError):
            RetailerSpec(retailer_id="r", n_users=0)

    def test_bad_coverage_rejected(self):
        with pytest.raises(DataError):
            RetailerSpec(retailer_id="r", brand_coverage=1.5)


class TestRetailerGeneration:
    def test_shapes(self, small_retailer):
        spec = small_retailer.spec
        assert small_retailer.n_items == spec.n_items
        assert small_retailer.n_users == spec.n_users
        assert len(small_retailer.catalog) == spec.n_items
        assert small_retailer.taxonomy.num_items == spec.n_items
        assert small_retailer.true_item_vectors.shape == (
            spec.n_items,
            spec.latent_dim,
        )

    def test_deterministic(self):
        spec = RetailerSpec(retailer_id="d", n_items=40, n_users=25, n_events=300, seed=5)
        a = generate_retailer(spec)
        b = generate_retailer(spec)
        assert [i.brand for i in a.catalog] == [i.brand for i in b.catalog]
        assert len(a.interactions) == len(b.interactions)
        assert all(
            x.item_index == y.item_index for x, y in zip(a.interactions, b.interactions)
        )

    def test_event_funnel_ordering(self, small_retailer):
        """Views dominate, conversions are rarest (paper section III-A)."""
        counts = count_by_event(small_retailer.interactions)
        assert counts[EventType.VIEW] >= counts[EventType.CART]
        assert counts[EventType.CART] >= counts[EventType.CONVERSION]
        assert counts[EventType.VIEW] > 0

    def test_brand_coverage_approximates_spec(self):
        spec = RetailerSpec(
            retailer_id="b", n_items=400, n_users=10, n_events=50,
            brand_coverage=0.3, seed=1,
        )
        retailer = generate_retailer(spec)
        assert 0.2 <= retailer.catalog.brand_coverage() <= 0.4

    def test_zero_brand_coverage(self):
        spec = RetailerSpec(
            retailer_id="nb", n_items=50, n_users=10, n_events=60,
            brand_coverage=0.0, seed=2,
        )
        retailer = generate_retailer(spec)
        assert retailer.catalog.brand_coverage() == 0.0

    def test_affinity_brand_bonus(self, small_retailer):
        """A user with a brand affinity scores matching items higher."""
        brand_users = [
            u for u, b in small_retailer.user_brand_affinity.items() if b is not None
        ]
        assert brand_users, "generator should produce some brand-aware users"

    def test_affinities_vectorized_matches_scalar(self, small_retailer):
        items = [0, 1, 2, 5]
        batch = small_retailer.affinities(0, items)
        singles = [small_retailer.affinity(0, i) for i in items]
        assert np.allclose(batch, singles)

    def test_timestamps_strictly_increase_within_user(self, small_retailer):
        by_user = {}
        for interaction in small_retailer.interactions:
            by_user.setdefault(interaction.user_id, []).append(interaction.timestamp)
        for stamps in by_user.values():
            assert all(a < b for a, b in zip(stamps, stamps[1:]))


class TestMarketplace:
    def test_heterogeneous_sizes(self):
        retailers = generate_marketplace(
            MarketplaceSpec(n_retailers=12, median_items=150, sigma_items=1.3, seed=4)
        )
        sizes = [r.n_items for r in retailers]
        assert len(retailers) == 12
        assert max(sizes) / max(1, min(sizes)) > 3  # real spread

    def test_sizes_clamped(self):
        spec = MarketplaceSpec(
            n_retailers=8, median_items=100, sigma_items=3.0,
            min_items=30, max_items=500, seed=5,
        )
        for retailer in generate_marketplace(spec):
            assert 30 <= retailer.n_items <= 500

    def test_retailer_ids_unique(self):
        retailers = generate_marketplace(MarketplaceSpec(n_retailers=6, seed=6))
        ids = [r.retailer_id for r in retailers]
        assert len(set(ids)) == 6

    def test_prefix_stability(self):
        """Adding retailers never changes the ones already generated."""
        small = generate_marketplace(MarketplaceSpec(n_retailers=3, seed=7))
        large = generate_marketplace(MarketplaceSpec(n_retailers=5, seed=7))
        for a, b in zip(small, large):
            assert a.n_items == b.n_items
            assert len(a.interactions) == len(b.interactions)


class TestDatasetBundle:
    def test_dataset_from_synthetic(self, small_retailer):
        dataset = dataset_from_synthetic(small_retailer)
        assert dataset.retailer_id == small_retailer.retailer_id
        assert dataset.n_items == small_retailer.n_items
        assert dataset.n_train_interactions + len(dataset.holdout) == len(
            small_retailer.interactions
        )
        assert dataset.source is small_retailer

    def test_describe_keys(self, small_dataset):
        description = small_dataset.describe()
        for key in ("retailer_id", "items", "users", "train_interactions", "events"):
            assert key in description

    def test_interacted_items_sorted_unique(self, small_dataset):
        items = small_dataset.interacted_items()
        assert items == sorted(set(items))
        assert all(0 <= i < small_dataset.n_items for i in items)

    def test_retailer_id_mismatch_rejected(self, small_retailer, tiny_retailer):
        from repro.data.datasets import RetailerDataset

        with pytest.raises(ValueError):
            RetailerDataset(
                retailer_id=tiny_retailer.retailer_id,
                catalog=small_retailer.catalog,
                taxonomy=small_retailer.taxonomy,
                train=[],
                holdout=[],
            )
