"""Shared fixtures: small synthetic retailers, datasets, trained models.

Expensive artifacts (generated retailers, trained models) are
session-scoped so the suite stays fast; tests must treat them as
read-only and re-derive anything they intend to mutate.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import RetailerDataset, dataset_from_synthetic
from repro.data.generator import RetailerSpec, SyntheticRetailer, generate_retailer
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer


SMALL_SPEC = RetailerSpec(
    retailer_id="fix_small",
    n_items=120,
    n_users=90,
    n_events=1400,
    taxonomy_depth=3,
    taxonomy_fanout=3,
    n_brands=6,
    seed=42,
)

TINY_SPEC = RetailerSpec(
    retailer_id="fix_tiny",
    n_items=30,
    n_users=20,
    n_events=220,
    taxonomy_depth=2,
    taxonomy_fanout=3,
    n_brands=3,
    seed=7,
)


@pytest.fixture(scope="session")
def small_retailer() -> SyntheticRetailer:
    return generate_retailer(SMALL_SPEC)


@pytest.fixture(scope="session")
def tiny_retailer() -> SyntheticRetailer:
    return generate_retailer(TINY_SPEC)


@pytest.fixture(scope="session")
def small_dataset(small_retailer) -> RetailerDataset:
    return dataset_from_synthetic(small_retailer)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_retailer) -> RetailerDataset:
    return dataset_from_synthetic(tiny_retailer)


@pytest.fixture(scope="session")
def default_params() -> BPRHyperParams:
    return BPRHyperParams(n_factors=8, learning_rate=0.08, seed=3)


@pytest.fixture(scope="session")
def trained_model(small_dataset, default_params) -> BPRModel:
    """A BPR model trained for a few epochs on the small dataset."""
    model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
    trainer = BPRTrainer(model, small_dataset, max_epochs=4, seed=9)
    trainer.train()
    return model


@pytest.fixture()
def fresh_model(small_dataset, default_params) -> BPRModel:
    """An untrained model tests are free to mutate."""
    return BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
