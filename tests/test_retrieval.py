"""ANN retrieval: IVF index invariants, recall harness, store, wiring.

The properties that make an *approximate* index admissible in a system
whose contract is determinism: rebuilds are byte-identical, full-probe
search degenerates to the exact baseline exactly (same ids, same order,
same tie-breaks), recall is monotone in ``nprobe``, and the recall gate
in the daily run keeps under-target indexes away from serving.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_cluster
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.candidates import CandidateSelector
from repro.core.grid import GridSpec
from repro.core.recovery import KILL_STAGES, CrashPlan
from repro.core.service import SigmundService
from repro.core.training import TrainerSettings
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import RetrievalError, ServingError, SimulatedCrash
from repro.models.base import top_k_select
from repro.retrieval import (
    ExactRetrieval,
    IVFConfig,
    IVFIndex,
    ModelRetrieval,
    RetrievalIndexStore,
    ann_for_model,
    exact_for_model,
    recall_at_k,
    retrieval_for_model,
)
from repro.retrieval.harness import (
    DEFAULT_ANN_THRESHOLD,
    MIN_ANN_THRESHOLD,
    measure_model_recall,
    resolve_ann_threshold,
    synthetic_embeddings,
    synthetic_queries,
)
from repro.retrieval.ivf import default_n_clusters


def make_catalog(n_items=400, n_factors=8, seed=0):
    return synthetic_embeddings(n_items, n_factors, seed=seed)


# ----------------------------------------------------------------------
# top_k_select: the shared deterministic tie order
# ----------------------------------------------------------------------
class TestTopKSelectOrder:
    @given(
        scores=st.lists(
            st.sampled_from([0.0, 1.0, 2.0, float("nan")]),
            min_size=1,
            max_size=40,
        ),
        k=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_total_lexicographic_order(self, scores, k):
        """Selection == prefix of the full (score desc, index asc) sort."""
        arr = np.asarray(scores, dtype=np.float64)
        sel = top_k_select(arr, k)
        keys = np.where(np.isnan(arr), -np.inf, arr)
        full = np.lexsort((np.arange(arr.size), -keys))
        assert sel.tolist() == full[: min(k, arr.size)].tolist()

    def test_all_tied_returns_lowest_indices(self):
        sel = top_k_select(np.ones(10), 4)
        assert sel.tolist() == [0, 1, 2, 3]

    def test_custom_tiebreak_reorders_ties_only(self):
        scores = np.array([1.0, 1.0, 2.0, 1.0])
        tiebreak = np.array([30, 10, 99, 20])
        sel = top_k_select(scores, 4, tiebreak=tiebreak)
        assert sel.tolist() == [2, 1, 3, 0]

    def test_nan_ranks_strictly_worst(self):
        scores = np.array([np.nan, 0.5, np.nan, -4.0])
        assert top_k_select(scores, 4).tolist() == [1, 3, 0, 2]

    def test_pool_ties_break_by_item_index_not_pool_position(self):
        """Regression: ``_top_k`` used to break ties by argpartition's
        arbitrary pool position, so the same tied candidates could rank
        differently depending on how the pool happened to be ordered."""
        from repro.models.base import _top_k

        pool = np.array([9, 3, 7, 1])
        scores = np.ones(4)
        ranked = [s.item_index for s in _top_k(pool, scores, 2)]
        assert ranked == [1, 3]
        reordered = [
            s.item_index for s in _top_k(pool[::-1].copy(), scores, 2)
        ]
        assert reordered == ranked


# ----------------------------------------------------------------------
# IVF build invariants
# ----------------------------------------------------------------------
class TestIVFBuild:
    def test_rebuild_is_byte_identical(self):
        vectors, bias = make_catalog()
        first = IVFIndex.build(vectors, bias, IVFConfig(seed=5))
        second = IVFIndex.build(vectors, bias, IVFConfig(seed=5))
        assert first.state_digest() == second.state_digest()

    def test_inverted_lists_partition_the_catalog(self):
        vectors, bias = make_catalog()
        index = IVFIndex.build(vectors, bias)
        assert int(index.cluster_sizes().sum()) == index.n_items
        items = np.sort(index.state()["list_items"])
        assert items.tolist() == list(range(index.n_items))

    def test_zero_items_raise(self):
        with pytest.raises(RetrievalError):
            IVFIndex.build(np.empty((0, 4)))

    def test_single_item_catalog(self):
        index = IVFIndex.build(np.ones((1, 4)), np.array([0.5]))
        ids, scores = index.search(np.ones((1, 4)), k=3)
        assert ids.tolist() == [[0, -1, -1]]
        assert scores[0, 0] == pytest.approx(4.5)
        assert np.isnan(scores[0, 1:]).all()

    def test_duplicate_vectors_survive_empty_cluster_reseed(self):
        """More clusters than distinct points exercises the reseed path."""
        vectors = np.repeat(np.eye(3), 4, axis=0)  # 12 items, 3 distinct
        index = IVFIndex.build(vectors, config=IVFConfig(n_clusters=8))
        assert int(index.cluster_sizes().sum()) == 12
        ids, _ = index.search(np.eye(3), k=12, nprobe=index.n_clusters)
        assert (ids >= 0).all()

    def test_default_cluster_count_scales_with_sqrt(self):
        assert default_n_clusters(100) == 40
        assert default_n_clusters(1) == 4
        assert default_n_clusters(10**8) == 1024  # MAX_CLUSTERS cap


# ----------------------------------------------------------------------
# Search semantics
# ----------------------------------------------------------------------
class TestIVFSearch:
    @pytest.fixture(scope="class")
    def catalog(self):
        vectors, bias = make_catalog(n_items=300, seed=3)
        # Heavy quantization forces score ties, stressing the tie order.
        vectors = np.round(vectors * 2.0) / 2.0
        bias = np.round(bias, 1)
        index = IVFIndex.build(vectors, bias, IVFConfig(seed=3))
        exact = ExactRetrieval(vectors, bias)
        queries = synthetic_queries(vectors, 24, seed=4)
        return index, exact, queries

    def test_full_probe_equals_exact_byte_for_byte(self, catalog):
        index, exact, queries = catalog
        ann_ids, ann_scores = index.search(
            queries, k=20, nprobe=index.n_clusters
        )
        exact_ids, exact_scores = exact.search(queries, k=20)
        assert np.array_equal(ann_ids, exact_ids)
        np.testing.assert_allclose(ann_scores, exact_scores)

    def test_recall_monotone_in_nprobe(self, catalog):
        index, exact, queries = catalog
        recalls = [
            recall_at_k(index, exact, queries, 10, nprobe)
            for nprobe in (1, 2, 4, 8, index.n_clusters)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))
        assert recalls[-1] == pytest.approx(1.0)

    def test_k_zero_and_empty_batch(self, catalog):
        index, _, queries = catalog
        ids, scores = index.search(queries, k=0)
        assert ids.shape == (queries.shape[0], 0)
        ids, scores = index.search(np.empty((0, queries.shape[1])), k=5)
        assert ids.shape == (0, 5)

    def test_lsh_prefilter_returns_subset_and_keeps_self(self):
        vectors, bias = make_catalog(n_items=200, seed=6)
        plain = IVFIndex.build(vectors, bias, IVFConfig(seed=6))
        filtered = IVFIndex.build(
            vectors, bias, IVFConfig(seed=6, lsh_bits=64)
        )
        n = plain.n_clusters
        # k = n_items so the comparison sees every surviving candidate,
        # not a tie-dependent top-50 boundary.
        base_ids, _ = plain.search(vectors[:16], k=200, nprobe=n)
        lsh_ids, _ = filtered.search(vectors[:16], k=200, nprobe=n)
        for row in range(16):
            base = set(base_ids[row][base_ids[row] >= 0].tolist())
            kept = set(lsh_ids[row][lsh_ids[row] >= 0].tolist())
            assert kept <= base
            # A catalog row queried against itself lands within a few
            # hamming bits of its own signature (only the bias coordinate
            # differs): the prefilter must not drop it.
            assert row in kept

    @given(nprobe=st.integers(min_value=1, max_value=64), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_ids_always_valid_or_padding(self, nprobe, seed):
        vectors, bias = make_catalog(n_items=150, seed=seed)
        index = IVFIndex.build(vectors, bias, IVFConfig(seed=seed))
        ids, scores = index.search(vectors[:5], k=10, nprobe=nprobe)
        valid = ids >= 0
        assert ids[valid].max(initial=0) < index.n_items
        assert np.isnan(scores[~valid]).all()
        for row in ids:
            real = row[row >= 0]
            assert len(set(real.tolist())) == real.size  # no duplicates


# ----------------------------------------------------------------------
# Recall harness + threshold resolution
# ----------------------------------------------------------------------
class TestHarness:
    def test_exact_vs_itself_is_perfect(self):
        vectors, bias = make_catalog(n_items=100)
        exact = ExactRetrieval(vectors, bias)
        queries = synthetic_queries(vectors, 8, seed=1)
        assert recall_at_k(exact, exact, queries, 10) == pytest.approx(1.0)

    def test_padding_never_counts_as_hit(self):
        class EmptyBackend:
            backend_name = "empty"
            n_items = 4

            def search(self, queries, k, nprobe=None):
                return (
                    np.full((queries.shape[0], k), -1, dtype=np.int64),
                    np.full((queries.shape[0], k), np.nan),
                )

        vectors, bias = make_catalog(n_items=4)
        exact = ExactRetrieval(vectors, bias)
        assert recall_at_k(EmptyBackend(), exact, vectors, 3) == 0.0

    def test_threshold_falls_back_without_artifact(self, tmp_path):
        assert (
            resolve_ann_threshold(tmp_path / "missing.json")
            == DEFAULT_ANN_THRESHOLD
        )

    def test_threshold_clamped_to_minimum(self, tmp_path):
        artifact = tmp_path / "bench.json"
        artifact.write_text(json.dumps({"crossover_items": 10}))
        assert resolve_ann_threshold(artifact) == MIN_ANN_THRESHOLD

    def test_threshold_reads_measured_crossover(self, tmp_path):
        artifact = tmp_path / "bench.json"
        artifact.write_text(json.dumps({"crossover_items": 123_456}))
        assert resolve_ann_threshold(artifact) == 123_456

    def test_malformed_artifact_falls_back(self, tmp_path):
        artifact = tmp_path / "bench.json"
        artifact.write_text("{not json")
        assert resolve_ann_threshold(artifact) == DEFAULT_ANN_THRESHOLD

    def test_committed_bench_artifact_resolves(self):
        """The repo-root E26 artifact is readable and sane."""
        assert resolve_ann_threshold() >= MIN_ANN_THRESHOLD


# ----------------------------------------------------------------------
# Model adapters (real trained BPR model)
# ----------------------------------------------------------------------
class TestModelAdapters:
    def test_exact_adapter_reproduces_score_items_ranking(
        self, trained_model
    ):
        """search_items == exact single-item-context scoring, tie-exact."""
        from repro.data.events import EventType
        from repro.data.sessions import UserContext

        seed_item = 7
        adapter = exact_for_model(trained_model)
        ids, scores = adapter.search_items(np.array([seed_item]), k=15)
        context = UserContext((seed_item,), (EventType.VIEW,))
        all_scores = trained_model.score_all(context)
        expected = top_k_select(all_scores, 15)
        assert ids[0].tolist() == expected.tolist()
        np.testing.assert_allclose(scores[0], all_scores[expected])

    def test_full_probe_ann_recall_is_perfect(self, trained_model):
        adapter = ann_for_model(trained_model, config=IVFConfig(seed=2))
        recall = measure_model_recall(
            trained_model,
            adapter,
            k=10,
            nprobe=adapter.backend.n_clusters,
        )
        assert recall == pytest.approx(1.0)

    def test_default_nprobe_recall_reasonable(self, trained_model):
        adapter = ann_for_model(trained_model, config=IVFConfig(seed=2))
        assert measure_model_recall(trained_model, adapter, k=10) >= 0.9

    def test_threshold_switch_picks_backend(self, trained_model):
        exact = retrieval_for_model(
            trained_model, threshold=trained_model.n_items + 1
        )
        ann = retrieval_for_model(trained_model, threshold=1)
        assert exact.backend_name == "exact"
        assert ann.backend_name == "ivf"

    def test_out_of_range_seed_item_raises(self, trained_model):
        adapter = exact_for_model(trained_model)
        with pytest.raises(RetrievalError):
            adapter.search_items(
                np.array([trained_model.n_items]), k=5
            )
        with pytest.raises(RetrievalError):
            adapter.search_items(np.array([-1]), k=5)

    def test_model_without_embedding_surface_raises(self):
        with pytest.raises(RetrievalError):
            exact_for_model(object())

    def test_score_items_accepts_any_integer_dtype(self, trained_model):
        """Regression: int32 arrays from index structures used to fall
        through to the element-wise list() path (or worse, float arrays
        silently truncated to wrong item ids)."""
        from repro.data.events import EventType
        from repro.data.sessions import UserContext

        context = UserContext((3,), (EventType.VIEW,))
        items64 = np.array([5, 9, 11], dtype=np.int64)
        items32 = items64.astype(np.int32)
        np.testing.assert_allclose(
            trained_model.score_items(context, items32),
            trained_model.score_items(context, items64),
        )
        with pytest.raises(TypeError):
            trained_model.score_items(
                context, np.array([5.7, 9.1], dtype=np.float64)
            )


# ----------------------------------------------------------------------
# Versioned index store
# ----------------------------------------------------------------------
def make_adapter(seed=0):
    vectors, bias = make_catalog(n_items=32, seed=seed)
    return ModelRetrieval(ExactRetrieval(vectors, bias), vectors)


class TestIndexStore:
    def test_load_get_version(self):
        store = RetrievalIndexStore()
        adapter = make_adapter()
        store.load("shop", adapter, version=3)
        assert store.get("shop") is adapter
        assert store.version_of("shop") == 3
        assert store.retailers() == ["shop"]
        assert store.versions() == {"shop": 3}

    def test_stale_version_rejected(self):
        store = RetrievalIndexStore()
        store.load("shop", make_adapter(), version=2)
        with pytest.raises(ServingError):
            store.load("shop", make_adapter(), version=2)
        assert store.version_of("shop") == 2

    def test_rollback_restores_predecessor(self):
        store = RetrievalIndexStore()
        old, new = make_adapter(0), make_adapter(1)
        store.load("shop", old, version=1)
        store.load("shop", new, version=2)
        assert store.rollback("shop") == 1
        assert store.get("shop") is old
        with pytest.raises(ServingError):
            store.rollback("shop")  # only one last-good predecessor

    def test_drop_is_idempotent(self):
        store = RetrievalIndexStore()
        store.load("shop", make_adapter(), version=1)
        store.drop_retailer("shop")
        store.drop_retailer("shop")
        assert not store.has_retailer("shop")
        assert store.get("shop") is None


# ----------------------------------------------------------------------
# Candidate-selector integration
# ----------------------------------------------------------------------
class TestSelectorIntegration:
    @pytest.fixture()
    def selector(self, small_dataset, trained_model):
        counts = CoOccurrenceCounts.from_interactions(
            small_dataset.n_items, small_dataset.train
        )
        return CandidateSelector(
            taxonomy=small_dataset.taxonomy,
            counts=counts,
            catalog=small_dataset.catalog,
            retrieval=exact_for_model(trained_model),
            retrieval_k=20,
        )

    def test_retrieval_sources_view_candidates(self, selector, small_dataset):
        items = list(range(0, small_dataset.n_items, 11))
        pools = selector.batch_view_based(items)
        assert len(pools) == len(items)
        for item, pool in zip(items, pools):
            assert item not in pool
            assert all(0 <= c < small_dataset.n_items for c in pool)
            assert 0 < len(pool) <= selector.max_candidates

    def test_retrieval_pools_differ_from_taxonomy_pools(
        self, selector, small_dataset
    ):
        items = list(range(0, small_dataset.n_items, 11))
        with_retrieval = selector.batch_view_based(items)
        selector.retrieval = None
        without = selector.batch_view_based(items)
        assert any(
            list(a) != list(b) for a, b in zip(with_retrieval, without)
        )

    def test_purchase_candidates_strip_substitutes(
        self, selector, small_dataset
    ):
        items = list(range(0, small_dataset.n_items, 23))
        views = selector.batch_view_based(items)
        purchases = selector.batch_purchase_based(items)
        for item, view_pool, purchase_pool in zip(items, views, purchases):
            assert item not in purchase_pool
            assert set(purchase_pool) <= set(view_pool)


# ----------------------------------------------------------------------
# Daily-run lifecycle: build, gate, publish, rollback, recovery
# ----------------------------------------------------------------------
FAST_SETTINGS = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)

TINY_GRID = GridSpec(
    n_factors=(4,),
    learning_rates=(0.05,),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(False,),
    use_brand=(False,),
    use_price=(False,),
    max_configs=2,
)


#: Few enough clusters that the default ``nprobe`` covers them all —
#: on the 40-item test catalogs the recall gate then measures exactly
#: 1.0 instead of punishing partial probing of a tiny index.
FULL_PROBE_CONFIG = IVFConfig(n_clusters=4)


def make_service(n_retailers=2, **kwargs) -> SigmundService:
    kwargs.setdefault("retrieval_config", FULL_PROBE_CONFIG)
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=TINY_GRID,
        settings=FAST_SETTINGS,
        **kwargs,
    )
    for i in range(n_retailers):
        service.onboard(
            dataset_from_synthetic(
                generate_retailer(
                    RetailerSpec(
                        retailer_id=f"r{i}",
                        n_items=40,
                        n_users=25,
                        n_events=260,
                        taxonomy_depth=2,
                        taxonomy_fanout=3,
                        seed=100 + i,
                    )
                )
            )
        )
    return service


class TestServiceRetrievalLifecycle:
    def test_small_catalogs_skip_index_builds(self):
        service = make_service()
        report = service.run_day()
        assert report.indexes_built == 0
        assert report.indexes_rejected == 0
        assert service.retrieval_store.retailers() == []
        # The skip is still journaled, so recovery can replay it.
        for rid in ("r0", "r1"):
            payload = service.journal.task_payload(0, "retrieval", rid)
            assert payload["built"] is False
            assert "below threshold" in payload["reason"]

    def test_indexes_publish_at_table_version(self):
        service = make_service(retrieval_threshold=1)
        report = service.run_day()
        assert report.indexes_built == 2
        assert report.indexes_rejected == 0
        assert (
            service.retrieval_store.versions()
            == service.substitutes_store.versions()
        )
        adapter = service.retrieval_store.get("r0")
        assert adapter.backend_name == "ivf"
        assert adapter.model_number >= 0

    def test_recall_gate_rejects_under_target_indexes(self):
        service = make_service(
            retrieval_threshold=1, retrieval_recall_target=2.0
        )
        report = service.run_day()
        assert report.indexes_built == 2
        assert report.indexes_rejected == 2
        assert service.retrieval_store.retailers() == []
        payload = service.journal.task_payload(0, "retrieval", "r0")
        assert payload["accepted"] is False
        assert "recall" in payload["reason"]

    def test_rollback_restores_previous_index(self):
        service = make_service(n_retailers=1, retrieval_threshold=1)
        service.run_day()
        first = service.retrieval_store.get("r0")
        service.run_day()
        second = service.retrieval_store.get("r0")
        assert second is not first
        version = service.rollback_retailer("r0")
        assert service.retrieval_store.get("r0") is first
        assert service.retrieval_store.version_of("r0") == version

    def test_offboard_purges_index(self):
        service = make_service(n_retailers=1, retrieval_threshold=1)
        service.run_day()
        service.offboard("r0")
        assert not service.retrieval_store.has_retailer("r0")

    @pytest.mark.parametrize(
        "stage", ["retrieval_build", "retrieval_logged"]
    )
    def test_crash_at_retrieval_stage_recovers_identically(self, stage):
        baseline = make_service(n_retailers=1, retrieval_threshold=1)
        baseline.run_day()

        crashed = make_service(
            n_retailers=1,
            retrieval_threshold=1,
            crash_plan=CrashPlan().crash_at(stage, label="r0"),
        )
        with pytest.raises(SimulatedCrash):
            crashed.run_day()
        crashed.recover()

        assert (
            crashed.retrieval_store.versions()
            == baseline.retrieval_store.versions()
        )
        assert (
            crashed.retrieval_store.get("r0").backend.state_digest()
            == baseline.retrieval_store.get("r0").backend.state_digest()
        )
        assert json.dumps(
            crashed.journal.day_seal(0), sort_keys=True
        ) == json.dumps(baseline.journal.day_seal(0), sort_keys=True)

    def test_new_kill_stages_registered(self):
        assert "retrieval_build" in KILL_STAGES
        assert "retrieval_logged" in KILL_STAGES
