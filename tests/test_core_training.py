"""Tests for Train(), the Hogwild trainer, and the training pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_cluster
from repro.core.checkpoint import CheckpointManager
from repro.core.config import ConfigRecord
from repro.core.grid import GridSpec
from repro.core.registry import ModelRegistry
from repro.core.sweep import SweepPlanner
from repro.core.training import (
    HogwildTrainer,
    TrainerSettings,
    TrainingPipeline,
    train_config,
)
from repro.exceptions import ConfigError, DataError
from repro.models.bpr import BPRHyperParams, BPRModel

FAST = TrainerSettings(
    max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
)


def config_for(dataset, number=0, warm_start=False, day=0, **params):
    return ConfigRecord(
        dataset.retailer_id,
        number,
        BPRHyperParams(n_factors=6, seed=number, **params),
        warm_start=warm_start,
        day=day,
    )


class TestTrainConfig:
    def test_returns_model_and_metrics(self, small_dataset):
        model, output = train_config(config_for(small_dataset), small_dataset, FAST)
        assert model.retailer_id == small_dataset.retailer_id
        assert 0.0 <= output.map_at_10 <= 1.0
        assert output.epochs_run >= 1
        assert output.sgd_steps > 0
        assert output.train_seconds > 0

    def test_retailer_mismatch_rejected(self, small_dataset, tiny_dataset):
        with pytest.raises(DataError):
            train_config(config_for(small_dataset), tiny_dataset, FAST)

    def test_warm_start_runs_fewer_epochs(self, small_dataset):
        cold_config = config_for(small_dataset, number=1)
        cold_model, cold_output = train_config(cold_config, small_dataset, FAST)
        warm_config = config_for(small_dataset, number=1, warm_start=True, day=1)
        _, warm_output = train_config(
            warm_config, small_dataset, FAST, warm_model=cold_model
        )
        assert warm_output.epochs_run <= FAST.max_epochs_incremental
        assert cold_output.epochs_run <= FAST.max_epochs_full

    def test_checkpoints_written_on_interval(self, small_dataset):
        settings = TrainerSettings(
            max_epochs_full=4,
            sampler="uniform",
            seconds_per_sgd_step=1.0,  # huge: every epoch crosses the interval
            checkpoint_interval_seconds=10.0,
        )
        manager = CheckpointManager(settings.checkpoint_interval_seconds)
        config = config_for(small_dataset)
        train_config(config, small_dataset, settings, checkpoints=manager)
        assert manager.writes >= 2
        # Finished tasks discard their checkpoint.
        assert not manager.has_checkpoint(config.key)

    def test_deterministic(self, small_dataset):
        _, a = train_config(config_for(small_dataset), small_dataset, FAST)
        _, b = train_config(config_for(small_dataset), small_dataset, FAST)
        assert a.map_at_10 == b.map_at_10


class TestTrainerSettings:
    def test_thread_speedup(self):
        assert TrainerSettings(n_threads=1).thread_speedup() == 1.0
        four = TrainerSettings(n_threads=4, thread_efficiency=0.85)
        assert four.thread_speedup() == pytest.approx(1 + 3 * 0.85)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainerSettings(n_threads=0)
        with pytest.raises(ConfigError):
            TrainerSettings(sampler="magic")


class TestHogwild:
    def test_multithreaded_training_converges(self, small_dataset):
        model = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy,
            BPRHyperParams(n_factors=8, seed=4),
        )
        trainer = HogwildTrainer(model, small_dataset, n_threads=4, max_epochs=3)
        report = trainer.train()
        assert report.epochs_run == 3
        assert report.sgd_steps == 3 * trainer.n_examples
        assert report.epoch_losses[-1] < report.epoch_losses[0]
        assert np.all(np.isfinite(model.item_embeddings))

    def test_single_thread_equivalent_quality(self, small_dataset):
        """Lock-free racing must not destroy model quality."""
        from repro.evaluation import HoldoutEvaluator

        def map_with(threads: int) -> float:
            model = BPRModel(
                small_dataset.catalog, small_dataset.taxonomy,
                BPRHyperParams(n_factors=8, seed=6),
            )
            HogwildTrainer(
                model, small_dataset, n_threads=threads, max_epochs=3, seed=6
            ).train()
            return HoldoutEvaluator(small_dataset).evaluate(model).map_at_10

        single = map_with(1)
        multi = map_with(4)
        assert multi > single * 0.6

    def test_invalid_threads(self, small_dataset, fresh_model):
        with pytest.raises(ConfigError):
            HogwildTrainer(fresh_model, small_dataset, n_threads=0)


class TestTrainingPipeline:
    def run_pipeline(self, datasets, configs=None, settings=FAST, seed=0):
        cluster = build_cluster(n_cells=2, machines_per_cell=4)
        registry = ModelRegistry()
        pipeline = TrainingPipeline(cluster, registry, settings=settings, seed=seed)
        by_id = {d.retailer_id: d for d in datasets}
        if configs is None:
            plan = SweepPlanner(GridSpec.small()).full_sweep(datasets)
            configs = plan.configs
        outputs, stats = pipeline.run(configs, by_id)
        return registry, outputs, stats

    def test_trains_all_configs_and_publishes(self, tiny_dataset):
        registry, outputs, stats = self.run_pipeline([tiny_dataset])
        assert stats.configs_trained == len(outputs) > 0
        assert registry.model_count(tiny_dataset.retailer_id) == len(outputs)
        assert stats.total_cost > 0
        assert stats.makespan_seconds > 0

    def test_splits_across_cells(self, tiny_dataset, small_dataset):
        registry, outputs, stats = self.run_pipeline([tiny_dataset, small_dataset])
        assert len(stats.per_cell) >= 1
        assert sum(s.map_tasks for s in stats.per_cell.values()) == len(outputs)

    def test_best_model_beats_worst(self, small_dataset):
        registry, outputs, _ = self.run_pipeline([small_dataset])
        maps = sorted(o.map_at_10 for o in outputs)
        best = registry.best(small_dataset.retailer_id)
        assert best.map_at_10 == maps[-1]

    def test_empty_config_list(self, tiny_dataset):
        registry, outputs, stats = self.run_pipeline([tiny_dataset], configs=[])
        assert outputs == []
        assert stats.configs_trained == 0
