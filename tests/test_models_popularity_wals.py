"""Tests for the popularity baseline and the WALS alternative."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.events import EventType, Interaction
from repro.data.sessions import UserContext
from repro.exceptions import ConfigError, ModelNotTrainedError
from repro.models.popularity import PopularityModel
from repro.models.wals import WALSHyperParams, WALSModel


def ctx(*pairs) -> UserContext:
    return UserContext(
        tuple(i for _, i in pairs), tuple(e for e, _ in pairs)
    )


class TestPopularity:
    def log(self):
        return [
            Interaction(0.0, 1, 0, EventType.VIEW),
            Interaction(1.0, 1, 0, EventType.VIEW),
            Interaction(2.0, 2, 1, EventType.CONVERSION),
            Interaction(3.0, 3, 2, EventType.VIEW),
        ]

    def test_event_weights_order_scores(self):
        model = PopularityModel(4, self.log())
        # item 1: one conversion (weight 8) > item 0: two views (weight 2)
        scores = model.score_items(UserContext.empty(), [0, 1, 2, 3])
        assert scores[1] > scores[0] > scores[2] > scores[3]

    def test_context_ignored(self):
        model = PopularityModel(4, self.log())
        a = model.score_items(ctx((EventType.VIEW, 3)), [0, 1])
        b = model.score_items(UserContext.empty(), [0, 1])
        assert np.array_equal(a, b)

    def test_popularity_rank(self):
        model = PopularityModel(4, self.log())
        assert list(model.popularity_rank()[:2]) == [1, 0]

    def test_head_items_fraction(self):
        model = PopularityModel(10, self.log())
        assert len(model.head_items(0.2)) == 2
        assert len(model.head_items(0.0)) == 1  # at least one


class TestWals:
    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            WALSHyperParams(n_factors=0)
        with pytest.raises(ConfigError):
            WALSHyperParams(n_iterations=0)

    def test_scoring_before_fit_rejected(self):
        model = WALSModel(5, WALSHyperParams(n_factors=2))
        with pytest.raises(ModelNotTrainedError):
            model.score_items(ctx((EventType.VIEW, 0)), [1])

    def test_fold_in_empty_context_zero(self, small_dataset):
        model = WALSModel(small_dataset.n_items, WALSHyperParams(n_factors=4))
        model.fit(small_dataset.train)
        assert np.allclose(model.fold_in(UserContext.empty()), 0.0)

    def test_learns_better_than_random(self, small_dataset):
        """WALS should rank held-out items far above the median."""
        model = WALSModel(
            small_dataset.n_items,
            WALSHyperParams(n_factors=12, n_iterations=6, seed=3),
        )
        model.fit(small_dataset.train)
        ranks = [
            model.rank_of(example.context, example.held_out_item)
            for example in small_dataset.holdout[:40]
        ]
        assert np.mean(ranks) < small_dataset.n_items / 3

    def test_fold_in_prefers_context_neighbourhood(self, small_dataset):
        model = WALSModel(
            small_dataset.n_items, WALSHyperParams(n_factors=8, n_iterations=4)
        )
        model.fit(small_dataset.train)
        context = ctx((EventType.CONVERSION, 5))
        scores = model.score_items(context, range(small_dataset.n_items))
        # The context item itself should score near the top: the fold-in
        # reconstructs a user who strongly prefers it.
        rank_of_context_item = int(np.sum(scores >= scores[5]))
        assert rank_of_context_item <= small_dataset.n_items * 0.1

    def test_deterministic(self, small_dataset):
        def factors():
            model = WALSModel(
                small_dataset.n_items,
                WALSHyperParams(n_factors=4, n_iterations=2, seed=9),
            )
            model.fit(small_dataset.train)
            return model.item_factors.copy()

        assert np.array_equal(factors(), factors())
