"""Tests for the cluster simulator: clock, machines, cells, pre-emption, cost."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cell import Cell, Cluster
from repro.cluster.clock import SimClock
from repro.cluster.cost import CostLedger, ResourcePricing
from repro.cluster.execution import run_with_preemptions
from repro.cluster.machine import MachineSpec, Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.exceptions import CapacityError, ClusterError


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now == 5.0

    def test_advance_to(self):
        clock = SimClock(10.0)
        clock.advance_to(12.0)
        assert clock.now == 12.0

    def test_no_rewind(self):
        clock = SimClock(10.0)
        with pytest.raises(ClusterError):
            clock.advance(-1.0)
        with pytest.raises(ClusterError):
            clock.advance_to(5.0)


class TestMachineAndCell:
    def make_cell(self, machines=4, cpus=8, memory=64.0):
        return Cell("c", machines, MachineSpec(cpus=cpus, memory_gb=memory))

    def test_allocate_and_release(self):
        cell = self.make_cell()
        vm = cell.allocate(VMRequest(4, 16))
        assert cell.free_cpus == 4 * 8 - 4
        cell.release(vm)
        assert cell.free_cpus == 32
        assert not vm.alive

    def test_capacity_error_when_full(self):
        cell = self.make_cell(machines=1, cpus=4)
        cell.allocate(VMRequest(4, 16))
        with pytest.raises(CapacityError):
            cell.allocate(VMRequest(1, 1))

    def test_memory_constrains_too(self):
        cell = self.make_cell(machines=1, cpus=16, memory=32.0)
        cell.allocate(VMRequest(1, 32.0))
        with pytest.raises(CapacityError):
            cell.allocate(VMRequest(1, 1.0))

    def test_regular_evicts_preemptible(self):
        cell = self.make_cell(machines=1, cpus=8)
        evicted = []
        cell.eviction_listeners.append(evicted.append)
        low = cell.allocate(VMRequest(8, 32, Priority.PREEMPTIBLE))
        regular = cell.allocate(VMRequest(8, 32, Priority.REGULAR))
        assert cell.evictions == 1
        assert evicted == [low]
        assert not low.alive
        assert regular.alive

    def test_regular_cannot_evict_regular(self):
        cell = self.make_cell(machines=1, cpus=8)
        cell.allocate(VMRequest(8, 32, Priority.REGULAR))
        with pytest.raises(CapacityError):
            cell.allocate(VMRequest(8, 32, Priority.REGULAR))

    def test_minimal_evictions_chosen(self):
        """The scheduler evicts from the machine needing fewest evictions."""
        cell = self.make_cell(machines=2, cpus=8)
        # machine with two 4-cpu preemptibles and machine with one 8-cpu
        cell.machines[0].place(VMRequest(4, 8), "c", 0.0)
        cell.machines[0].place(VMRequest(4, 8), "c", 0.0)
        cell.machines[1].place(VMRequest(8, 8), "c", 0.0)
        cell.allocate(VMRequest(8, 8, Priority.REGULAR))
        assert cell.evictions == 1  # the single big VM, not the two small

    def test_utilization(self):
        cell = self.make_cell(machines=2, cpus=8)
        assert cell.utilization == 0.0
        cell.allocate(VMRequest(8, 8))
        assert cell.utilization == pytest.approx(0.5)

    def test_release_unknown_vm_rejected(self):
        cell_a = self.make_cell()
        cell_b = self.make_cell()
        vm = cell_a.allocate(VMRequest(1, 1))
        with pytest.raises(ClusterError):
            cell_b.release(vm)


class TestCluster:
    def build(self):
        return Cluster(
            [
                Cell("big", 8, MachineSpec(cpus=8, memory_gb=64)),
                Cell("small", 2, MachineSpec(cpus=8, memory_gb=64)),
            ]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Cell("x", 1), Cell("x", 1)])

    def test_cells_by_free_capacity(self):
        cluster = self.build()
        assert [c.name for c in cluster.cells_by_free_capacity()] == ["big", "small"]

    def test_split_by_capacity_proportional(self):
        cluster = self.build()
        shares = cluster.split_by_capacity(10)
        assert sum(shares.values()) == 10
        assert shares["big"] > shares["small"] >= 1

    def test_split_with_no_capacity_rejected(self):
        cluster = Cluster([Cell("c", 1, MachineSpec(cpus=2, memory_gb=8))])
        cluster.cell("c").allocate(VMRequest(2, 8))
        with pytest.raises(CapacityError):
            cluster.split_by_capacity(4)

    def test_unknown_cell(self):
        with pytest.raises(ClusterError):
            self.build().cell("nope")

    def test_split_fewer_shards_than_cells(self):
        """Regression: 2 shards over 4 equal cells used to go negative."""
        cluster = Cluster(
            [Cell(f"c{i}", 2, MachineSpec(cpus=8, memory_gb=64)) for i in range(4)]
        )
        shares = cluster.split_by_capacity(2)
        assert sum(shares.values()) == 2
        assert all(share >= 0 for share in shares.values())

    def test_single_shard_goes_to_most_free_cell(self):
        shares = self.build().split_by_capacity(1)
        assert shares["big"] == 1
        assert shares["small"] == 0

    def test_split_invalid_shard_count_rejected(self):
        with pytest.raises(ClusterError):
            self.build().split_by_capacity(0)

    @settings(max_examples=60, deadline=None)
    @given(
        machines=st.lists(st.integers(1, 5), min_size=1, max_size=6),
        shards=st.integers(1, 40),
    )
    def test_split_by_capacity_total(self, machines, shards):
        """Shares always sum exactly, never go negative, and every free
        cell gets at least one shard whenever there are enough to go
        around."""
        cluster = Cluster(
            [
                Cell(f"h{i}", count, MachineSpec(cpus=4, memory_gb=32))
                for i, count in enumerate(machines)
            ]
        )
        shares = cluster.split_by_capacity(shards)
        assert sum(shares.values()) == shards
        assert all(share >= 0 for share in shares.values())
        if shards >= len(machines):
            assert all(share >= 1 for share in shares.values())


class TestPreemptionModel:
    def test_survival_decreases_with_duration(self):
        model = PreemptionModel()
        short = model.survival_probability(Priority.PREEMPTIBLE, 600)
        long = model.survival_probability(Priority.PREEMPTIBLE, 6 * 3600)
        assert short > long

    def test_regular_far_more_reliable(self):
        model = PreemptionModel()
        duration = 4 * 3600
        assert model.survival_probability(
            Priority.REGULAR, duration
        ) > model.survival_probability(Priority.PREEMPTIBLE, duration)

    def test_expected_attempts(self):
        model = PreemptionModel(preemptible_mean_uptime_hours=1.0)
        assert model.expected_attempts(
            Priority.PREEMPTIBLE, 3600
        ) == pytest.approx(np.e, rel=1e-6)

    def test_samples_deterministic_with_seed(self):
        model = PreemptionModel()
        a = model.sample_time_to_preemption(Priority.PREEMPTIBLE, 5)
        b = model.sample_time_to_preemption(Priority.PREEMPTIBLE, 5)
        assert a == b

    def test_invalid_uptime(self):
        with pytest.raises(ClusterError):
            PreemptionModel(preemptible_mean_uptime_hours=0.0)


class TestPricing:
    def test_preemptible_discount(self):
        pricing = ResourcePricing(preemptible_discount=0.7)
        regular = pricing.cost(VMRequest(4, 32, Priority.REGULAR), 3600)
        cheap = pricing.cost(VMRequest(4, 32, Priority.PREEMPTIBLE), 3600)
        assert cheap == pytest.approx(0.3 * regular)

    def test_cost_scales_with_time_and_size(self):
        pricing = ResourcePricing()
        small = pricing.cost(VMRequest(1, 1, Priority.REGULAR), 3600)
        big = pricing.cost(VMRequest(2, 2, Priority.REGULAR), 7200)
        assert big == pytest.approx(4 * small)

    def test_ledger_accounts(self):
        ledger = CostLedger()
        request = VMRequest(2, 8, Priority.REGULAR)
        ledger.charge("train", request, 3600)
        ledger.charge("train", request, 3600)
        ledger.charge("infer", request, 1800)
        assert ledger.total("train") == pytest.approx(2 * ledger.total("infer") * 2)
        assert ledger.total() == pytest.approx(
            ledger.total("train") + ledger.total("infer")
        )
        assert ledger.cpu_seconds("train") == pytest.approx(2 * 2 * 3600)

    def test_invalid_discount(self):
        with pytest.raises(ClusterError):
            ResourcePricing(preemptible_discount=1.0)


class TestExecution:
    def test_no_preemption_means_single_attempt(self):
        model = PreemptionModel(regular_mean_uptime_hours=1e9)
        trace = run_with_preemptions(
            3600, priority=Priority.REGULAR, preemption_model=model, seed=1
        )
        assert trace.attempts == 1
        assert trace.preemptions == 0
        assert trace.wall_seconds >= 3600

    def test_checkpointing_bounds_lost_work(self):
        """With checkpoints every 60s, no single pre-emption loses much."""
        model = PreemptionModel(preemptible_mean_uptime_hours=0.25)
        trace = run_with_preemptions(
            2 * 3600,
            preemption_model=model,
            checkpoint_interval=60.0,
            checkpoint_write_seconds=0.5,
            seed=7,
        )
        assert trace.preemptions > 0
        assert trace.lost_work_seconds <= trace.preemptions * (60.0 + 0.5 + 30.0)

    def test_no_checkpointing_loses_more(self):
        model = PreemptionModel(preemptible_mean_uptime_hours=0.5)
        with_ckpt = run_with_preemptions(
            3600, preemption_model=model, checkpoint_interval=120.0, seed=3
        )
        without = run_with_preemptions(
            3600, preemption_model=model, checkpoint_interval=None, seed=3
        )
        assert without.billed_seconds >= with_ckpt.billed_seconds

    def test_work_conservation(self):
        """billed = work + lost + checkpoints + restart overheads."""
        model = PreemptionModel(preemptible_mean_uptime_hours=0.5)
        trace = run_with_preemptions(
            3600,
            preemption_model=model,
            checkpoint_interval=300.0,
            checkpoint_write_seconds=2.0,
            restart_overhead_seconds=30.0,
            seed=11,
        )
        restart_overhead = 30.0 * (trace.attempts - 1)
        # Pre-empted attempts may lose part of their restart overhead too,
        # so conservation holds as an inequality within one uptime draw.
        expected = (
            trace.work_seconds
            + trace.lost_work_seconds
            + trace.checkpoint_overhead_seconds
            + restart_overhead
        )
        assert trace.billed_seconds <= expected + 1e-6
        assert trace.billed_seconds >= trace.work_seconds

    def test_invalid_args(self):
        with pytest.raises(ClusterError):
            run_with_preemptions(-1.0)
        with pytest.raises(ClusterError):
            run_with_preemptions(10.0, checkpoint_interval=0.0)

    def test_zero_work(self):
        trace = run_with_preemptions(0.0, seed=1)
        assert trace.billed_seconds == 0.0
        assert trace.attempts == 0
