"""Tests for the batch-swapped store and the serving path."""

from __future__ import annotations

import pytest

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.exceptions import ServingError
from repro.models.base import ScoredItem
from repro.serving.server import RecommendationServer
from repro.serving.store import RecommendationStore


def recs(*pairs):
    return [ScoredItem(item, score) for item, score in pairs]


def loaded_store() -> RecommendationStore:
    store = RecommendationStore()
    store.load_batch(
        "r1",
        {
            0: recs((1, 3.0), (2, 2.0), (3, 1.0)),
            1: recs((4, 5.0), (0, 1.0)),
            2: [],
        },
        version=1,
    )
    return store


class TestStore:
    def test_lookup(self):
        store = loaded_store()
        assert [r.item_index for r in store.lookup("r1", 0)] == [1, 2, 3]

    def test_lookup_unknown_item_empty(self):
        store = loaded_store()
        assert store.lookup("r1", 99) == []
        assert store.stats.misses == 1

    def test_lookup_unknown_retailer_raises(self):
        with pytest.raises(ServingError):
            loaded_store().lookup("other", 0)

    def test_batch_swap_atomic_version(self):
        store = loaded_store()
        store.load_batch("r1", {0: recs((9, 1.0))}, version=2)
        assert [r.item_index for r in store.lookup("r1", 0)] == [9]
        assert store.lookup("r1", 1) == []  # old table fully replaced
        assert store.version_of("r1") == 2

    def test_stale_batch_rejected(self):
        store = loaded_store()
        with pytest.raises(ServingError):
            store.load_batch("r1", {}, version=1)
        with pytest.raises(ServingError):
            store.load_batch("r1", {}, version=0)

    def test_items_covered(self):
        assert loaded_store().items_covered("r1") == 2  # item 2 has no recs

    def test_hit_rate(self):
        store = loaded_store()
        store.lookup("r1", 0)
        store.lookup("r1", 99)
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_retailers(self):
        store = loaded_store()
        store.load_batch("r0", {}, version=1)
        assert store.retailers() == ["r0", "r1"]


class TestServer:
    def test_empty_context_empty_result(self):
        server = RecommendationServer(loaded_store())
        assert server.recommend("r1", UserContext.empty()) == []

    def test_merges_context_lookups(self):
        server = RecommendationServer(loaded_store())
        context = UserContext((0, 1), (EventType.VIEW, EventType.VIEW))
        served = server.recommend("r1", context, k=10)
        items = [r.item_index for r in served]
        assert 4 in items  # from item 1's table
        assert 2 in items  # from item 0's table

    def test_excludes_context_items(self):
        server = RecommendationServer(loaded_store())
        context = UserContext((1, 0), (EventType.VIEW, EventType.VIEW))
        items = {r.item_index for r in server.recommend("r1", context)}
        assert 0 not in items and 1 not in items

    def test_recency_prefers_recent_source(self):
        """With equal stored scores, the most recent context item's rec wins."""
        store = RecommendationStore()
        store.load_batch(
            "r", {0: recs((10, 1.0)), 1: recs((11, 1.0))}, version=1
        )
        server = RecommendationServer(store, recency_decay=0.5)
        context = UserContext((0, 1), (EventType.VIEW, EventType.VIEW))
        served = server.recommend("r", context, k=2)
        assert served[0].item_index == 11
        assert served[0].source_item == 1

    def test_event_strength_boosts_source(self):
        store = RecommendationStore()
        store.load_batch(
            "r", {0: recs((10, 1.0)), 1: recs((11, 1.0))}, version=1
        )
        server = RecommendationServer(store, recency_decay=1.0)
        context = UserContext((1, 0), (EventType.CONVERSION, EventType.VIEW))
        served = server.recommend("r", context, k=2)
        # Item 1 was converted (weight 2.5) vs item 0 viewed (1.0).
        assert served[0].item_index == 11

    def test_k_limits_results(self):
        server = RecommendationServer(loaded_store())
        context = UserContext((0,), (EventType.VIEW,))
        assert len(server.recommend("r1", context, k=2)) == 2

    def test_recommend_for_item(self):
        server = RecommendationServer(loaded_store())
        served = server.recommend_for_item("r1", 0, k=2)
        assert [r.item_index for r in served] == [1, 2]
        assert all(r.source_item == 0 for r in served)

    def test_recommend_for_item_self_rec_does_not_shorten_page(self):
        """Regression: filtering self-recs *after* the top-k slice used to
        return k-1 results whenever an item appeared in its own list."""
        store = RecommendationStore()
        store.load_batch(
            "r",
            {0: recs((0, 9.0), (1, 3.0), (2, 2.0), (3, 1.0))},
            version=1,
        )
        server = RecommendationServer(store)
        served = server.recommend_for_item("r", 0, k=3)
        assert [r.item_index for r in served] == [1, 2, 3]
        assert len(served) == 3
