"""Tests for CSV dataset loading (the public-data path)."""

from __future__ import annotations

import pytest

from repro.data.events import EventType
from repro.data.loaders import (
    dataset_from_files,
    load_catalog_csv,
    load_interactions_csv,
    ratings_to_events,
)
from repro.exceptions import DataError

CATALOG_CSV = """item_id,category,brand,price
sku1,electronics/phones/android,googel,499.00
sku2,electronics/phones/android,,
sku3,electronics/phones/apple,apple,999.00
sku4,home/kitchen,acme,19.99
"""

EVENTS_CSV = """user_id,item_id,event,timestamp
u1,sku1,view,1.0
u1,sku2,view,2.0
u1,sku2,add_to_cart,3.0
u2,sku3,search,1.5
u2,sku4,purchase,2.5
u2,ghost,view,3.5
u2,sku1,view,4.5
"""


@pytest.fixture()
def csv_files(tmp_path):
    catalog = tmp_path / "catalog.csv"
    catalog.write_text(CATALOG_CSV)
    events = tmp_path / "events.csv"
    events.write_text(EVENTS_CSV)
    return catalog, events


class TestCatalogCsv:
    def test_loads_items_and_taxonomy(self, csv_files):
        catalog_path, _ = csv_files
        catalog, taxonomy, index = load_catalog_csv(catalog_path, "shop")
        assert len(catalog) == 4
        assert index == {"sku1": 0, "sku2": 1, "sku3": 2, "sku4": 3}
        assert catalog[0].brand == "googel"
        assert catalog[1].brand is None
        assert catalog[1].price is None
        assert taxonomy.category_of(0) == "electronics/phones/android"
        # Prefixes become internal categories.
        assert taxonomy.parent_of("electronics/phones") == "electronics"
        assert taxonomy.lca_distance(0, 2) == 2  # android vs apple phones

    def test_item_ids_namespaced(self, csv_files):
        catalog_path, _ = csv_files
        catalog, _, _ = load_catalog_csv(catalog_path, "shop")
        assert catalog[0].item_id == "shop:sku1"

    def test_duplicate_item_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("item_id,category\nx,a\nx,a\n")
        with pytest.raises(DataError):
            load_catalog_csv(path, "shop")

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sku,cat\nx,a\n")
        with pytest.raises(DataError):
            load_catalog_csv(path, "shop")

    def test_bad_price_rejected(self, tmp_path):
        path = tmp_path / "badprice.csv"
        path.write_text("item_id,category,brand,price\nx,a,b,notanumber\n")
        with pytest.raises(DataError):
            load_catalog_csv(path, "shop")

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_catalog_csv(tmp_path / "nope.csv", "shop")


class TestInteractionsCsv:
    def test_loads_and_maps_events(self, csv_files):
        catalog_path, events_path = csv_files
        _, _, index = load_catalog_csv(catalog_path, "shop")
        interactions = load_interactions_csv(events_path, index)
        # ghost row skipped
        assert len(interactions) == 6
        events = {it.event for it in interactions}
        assert EventType.CART in events
        assert EventType.CONVERSION in events

    def test_users_densified_in_order(self, csv_files):
        catalog_path, events_path = csv_files
        _, _, index = load_catalog_csv(catalog_path, "shop")
        interactions = load_interactions_csv(events_path, index)
        assert {it.user_id for it in interactions} == {0, 1}

    def test_unknown_item_strict_mode(self, csv_files):
        catalog_path, events_path = csv_files
        _, _, index = load_catalog_csv(catalog_path, "shop")
        with pytest.raises(DataError):
            load_interactions_csv(events_path, index, skip_unknown_items=False)

    def test_unknown_event_rejected(self, tmp_path, csv_files):
        catalog_path, _ = csv_files
        _, _, index = load_catalog_csv(catalog_path, "shop")
        path = tmp_path / "weird.csv"
        path.write_text("user_id,item_id,event,timestamp\nu,sku1,teleport,1\n")
        with pytest.raises(DataError):
            load_interactions_csv(path, index)


class TestRatingsAdapter:
    def test_thresholds(self):
        rows = [(1, 0, 5.0, 1.0), (1, 1, 4.0, 2.0), (1, 2, 3.0, 3.0),
                (1, 3, 1.0, 4.0)]
        interactions = ratings_to_events(rows)
        assert [it.event for it in interactions] == [
            EventType.CONVERSION, EventType.CART,
            EventType.SEARCH, EventType.VIEW,
        ]

    def test_below_view_threshold_dropped(self):
        interactions = ratings_to_events(
            [(1, 0, 0.5, 1.0)], view_threshold=1.0
        )
        assert interactions == []


class TestDatasetFromFiles:
    def test_end_to_end(self, csv_files):
        catalog_path, events_path = csv_files
        dataset = dataset_from_files(catalog_path, events_path, "shop")
        assert dataset.retailer_id == "shop"
        assert dataset.n_items == 4
        # u1 has 3 events -> holds out the last; u2 has 3 valid events.
        assert dataset.n_train_interactions + len(dataset.holdout) == 6
        assert len(dataset.holdout) == 2

    def test_loaded_dataset_trains(self, csv_files):
        """The CSV path produces data the real training stack accepts."""
        from repro.models.bpr import BPRHyperParams, BPRModel
        from repro.models.trainer import BPRTrainer

        catalog_path, events_path = csv_files
        dataset = dataset_from_files(catalog_path, events_path, "shop")
        model = BPRModel(
            dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=4)
        )
        report = BPRTrainer(model, dataset, max_epochs=2).train()
        assert report.epochs_run >= 1
