"""End-to-end integration tests: the whole Sigmund loop on a tiny fleet."""

from __future__ import annotations

import pytest

from repro import (
    GridSpec,
    MarketplaceSpec,
    SigmundService,
    TrainerSettings,
    build_cluster,
    dataset_from_synthetic,
    generate_marketplace,
)
from repro.data.datasets import dataset_from_synthetic as make_dataset
from repro.evaluation import HoldoutEvaluator
from repro.models.popularity import PopularityModel


@pytest.fixture(scope="module")
def fleet():
    return [
        dataset_from_synthetic(retailer)
        for retailer in generate_marketplace(
            MarketplaceSpec(
                n_retailers=3,
                median_items=60,
                sigma_items=0.7,
                users_per_item=0.6,
                events_per_user=10.0,
                seed=21,
            )
        )
    ]


@pytest.fixture(scope="module")
def service_after_two_days(fleet):
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=GridSpec.small(),
        settings=TrainerSettings(
            max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
        ),
    )
    for dataset in fleet:
        service.onboard(dataset)
    service.run_day()
    service.run_day()
    return service


class TestEndToEnd:
    def test_every_retailer_has_best_model(self, service_after_two_days, fleet):
        for dataset in fleet:
            assert service_after_two_days.best_map(dataset.retailer_id) >= 0.0

    def test_models_beat_popularity_baseline_on_average(
        self, service_after_two_days, fleet
    ):
        wins = 0
        for dataset in fleet:
            best = service_after_two_days.registry.best(dataset.retailer_id)
            evaluator = HoldoutEvaluator(dataset)
            baseline = evaluator.evaluate(
                PopularityModel(dataset.n_items, dataset.train)
            )
            if best.map_at_10 >= baseline.map_at_10:
                wins += 1
        assert wins >= 2, "factorization should beat popularity on most retailers"

    def test_serving_isolated_per_retailer(self, service_after_two_days, fleet):
        """Recommendations for retailer A never contain retailer B items —
        structurally guaranteed because stores are namespaced; verify the
        lookups resolve within the retailer's catalog bounds."""
        for dataset in fleet:
            example = dataset.holdout[0]
            recs = service_after_two_days.substitutes_server.recommend(
                dataset.retailer_id, example.context, k=5
            )
            for rec in recs:
                assert 0 <= rec.item_index < dataset.n_items

    def test_cost_accounting_consistent(self, service_after_two_days):
        reports = service_after_two_days.reports
        assert service_after_two_days.total_cost() == pytest.approx(
            sum(r.total_cost for r in reports), rel=1e-6
        )

    def test_incremental_day_cheaper(self, service_after_two_days):
        full, incremental = service_after_two_days.reports[:2]
        assert incremental.training_cost < full.training_cost

    def test_daily_versions_advance(self, service_after_two_days, fleet):
        rid = fleet[0].retailer_id
        assert service_after_two_days.substitutes_store.version_of(rid) == 2


class TestDataRefreshLoop:
    def test_new_data_day_over_day(self, fleet):
        """Simulate fresh interactions arriving: re-split a retailer's log
        and run another day; the service keeps working and re-serves."""
        from repro.data.generator import generate_retailer, RetailerSpec

        service = SigmundService(
            build_cluster(n_cells=1, machines_per_cell=4),
            grid=GridSpec.small(),
            settings=TrainerSettings(
                max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
            ),
        )
        spec = RetailerSpec(
            retailer_id="refresh", n_items=40, n_users=25, n_events=250,
            taxonomy_depth=2, seed=1,
        )
        service.onboard(make_dataset(generate_retailer(spec)))
        service.run_day()
        # "New day": more events observed (larger n_events, same id).
        from dataclasses import replace

        richer = replace(spec, n_events=400, seed=2)
        service.update_dataset(make_dataset(generate_retailer(richer)))
        day1 = service.run_day()
        assert day1.retailers_served == 1
        assert day1.sweep_kind == "incremental"
        assert service.substitutes_store.version_of("refresh") == 2
