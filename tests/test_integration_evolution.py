"""Integration: the service over a multi-day evolving marketplace.

The production loop end to end: data grows and churns daily (new items,
new users, price drift), the service re-splits and retrains
incrementally, warm starts survive catalog growth, and serving versions
advance — the complete "continuous service" story of paper section I.
"""

from __future__ import annotations

import pytest

from repro import GridSpec, SigmundService, TrainerSettings, build_cluster
from repro.data.datasets import dataset_from_synthetic
from repro.data.evolution import EvolutionSpec, evolve_retailer
from repro.data.generator import RetailerSpec, generate_retailer

FAST = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)
EVOLUTION = EvolutionSpec(new_item_rate=0.1, new_user_rate=0.1)


@pytest.fixture(scope="module")
def evolved_service():
    service = SigmundService(
        build_cluster(n_cells=1, machines_per_cell=4),
        grid=GridSpec.small(),
        settings=FAST,
    )
    retailers = {
        f"evsvc_{index}": generate_retailer(
            RetailerSpec(
                retailer_id=f"evsvc_{index}", n_items=40, n_users=25,
                n_events=260, taxonomy_depth=2, seed=200 + index,
            )
        )
        for index in range(2)
    }
    for retailer in retailers.values():
        service.onboard(dataset_from_synthetic(retailer))
    reports = [service.run_day()]
    for day in (1, 2):
        for rid, state in list(retailers.items()):
            retailers[rid] = evolve_retailer(state, day, EVOLUTION)
            service.update_dataset(dataset_from_synthetic(retailers[rid]))
        reports.append(service.run_day())
    return service, retailers, reports


class TestEvolvedServiceLoop:
    def test_all_days_served_everyone(self, evolved_service):
        service, retailers, reports = evolved_service
        assert [r.sweep_kind for r in reports] == [
            "full", "incremental", "incremental"
        ]
        assert all(r.retailers_served == len(retailers) for r in reports)

    def test_models_track_grown_catalogs(self, evolved_service):
        service, retailers, _ = evolved_service
        for rid, state in retailers.items():
            best = service.registry.best(rid)
            assert best.model.n_items == state.n_items
            assert state.n_items > 40  # catalog actually grew

    def test_new_items_receive_recommendations(self, evolved_service):
        service, retailers, _ = evolved_service
        for rid, state in retailers.items():
            newest_item = state.n_items - 1
            recs = service.substitutes_store.lookup(rid, newest_item)
            # The item existed during the last inference run, so it has a
            # row (it may legitimately be empty if it has no candidates,
            # but for these catalogs candidates always exist).
            assert recs, f"new item {newest_item} of {rid} has no recs"

    def test_serving_versions_advanced_daily(self, evolved_service):
        service, retailers, _ = evolved_service
        for rid in retailers:
            assert service.substitutes_store.version_of(rid) == 3

    def test_quality_tracked_every_day(self, evolved_service):
        service, retailers, _ = evolved_service
        for rid in retailers:
            history = service.monitor.metric_history(rid)
            assert set(history) == {0, 1, 2}

    def test_chargebacks_cover_all_retailers(self, evolved_service):
        service, retailers, _ = evolved_service
        costs = service.retailer_costs()
        assert set(costs) == set(retailers)
        assert all(cost > 0 for cost in costs.values())
