"""Tests for the power-law traffic generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import SigmundError
from repro.serving.traffic import (
    SimRequest,
    TrafficGenerator,
    unique_users,
    zipf_weights,
)

CATALOGS = {"big": 500, "mid": 120, "tiny": 30}


def make_generator(**kwargs) -> TrafficGenerator:
    defaults = dict(catalog_sizes=CATALOGS, n_users=50_000, qps=1_000.0, seed=11)
    defaults.update(kwargs)
    return TrafficGenerator(**defaults)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_rejects_empty(self):
        with pytest.raises(SigmundError):
            zipf_weights(0, 1.0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = make_generator().generate(300)
        b = make_generator().generate(300)
        assert a == b

    def test_different_seed_different_stream(self):
        a = make_generator(seed=1).generate(300)
        b = make_generator(seed=2).generate(300)
        assert a != b

    def test_contexts_stable_per_user(self):
        generator = make_generator()
        assert generator.context_for("big", 42) == generator.context_for("big", 42)
        fresh = make_generator()
        assert fresh.context_for("big", 42) == generator.context_for("big", 42)

    def test_clock_carries_across_generate_calls(self):
        generator = make_generator()
        first = generator.generate(50)
        second = generator.generate(50)
        assert second[0].timestamp_ms > first[-1].timestamp_ms


class TestDistributionShape:
    def test_requests_are_simrequests_in_range(self):
        for request in make_generator().generate(200):
            assert isinstance(request, SimRequest)
            assert request.retailer_id in CATALOGS
            assert 0 <= request.user_id < 50_000
            assert 1 <= len(request.context) <= 4
            n_items = CATALOGS[request.retailer_id]
            assert all(0 <= i < n_items for i in request.context.item_indices)

    def test_biggest_retailer_takes_most_traffic(self):
        counts = Counter(r.retailer_id for r in make_generator().generate(3_000))
        assert counts["big"] > counts["mid"] > counts["tiny"]

    def test_user_load_is_head_heavy(self):
        """A Zipf head: the busiest 1% of users take an outsized share."""
        requests = make_generator().generate(5_000)
        per_user = Counter(r.user_id for r in requests)
        ranked = sorted(per_user.values(), reverse=True)
        head = sum(ranked[: max(1, len(ranked) // 100)])
        assert head / len(requests) > 0.10
        assert unique_users(requests) < len(requests)  # repeat visitors exist

    def test_item_interest_is_head_heavy(self):
        requests = make_generator().generate(5_000)
        items = Counter(
            item for r in requests if r.retailer_id == "big"
            for item in r.context.item_indices
        )
        head_share = sum(count for item, count in items.items() if item < 50)
        assert head_share / sum(items.values()) > 0.4

    def test_arrival_rate_tracks_qps(self):
        requests = make_generator(qps=2_000.0).generate(4_000)
        duration_s = requests[-1].timestamp_ms / 1_000.0
        observed_qps = len(requests) / duration_s
        assert observed_qps == pytest.approx(2_000.0, rel=0.15)

    def test_timestamps_strictly_increase(self):
        requests = make_generator().generate(500)
        stamps = [r.timestamp_ms for r in requests]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))


class TestStream:
    def test_stream_batches_cover_n(self):
        batches = list(make_generator().stream(1_000, batch_size=256))
        assert [len(b) for b in batches] == [256, 256, 256, 232]

    def test_validation(self):
        with pytest.raises(SigmundError):
            TrafficGenerator({})
        with pytest.raises(SigmundError):
            make_generator(qps=0.0)
        with pytest.raises(SigmundError):
            make_generator().stream(10, batch_size=0).__next__()
        with pytest.raises(SigmundError):
            make_generator().generate(-1)
