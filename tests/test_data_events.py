"""Tests for event types, strength ordering, and log helpers."""

from __future__ import annotations

from repro.data.events import (
    EVENT_STRENGTH_ORDER,
    EventType,
    Interaction,
    count_by_event,
    filter_by_event,
    sort_log,
)


class TestStrengthOrdering:
    def test_paper_ordering(self):
        """view < search < cart < conversion (section III-A)."""
        assert (
            EventType.VIEW
            < EventType.SEARCH
            < EventType.CART
            < EventType.CONVERSION
        )

    def test_order_tuple_matches_enum(self):
        assert list(EVENT_STRENGTH_ORDER) == sorted(
            EventType, key=lambda e: e.strength
        )

    def test_stronger_than(self):
        view = Interaction(0.0, 1, 2, EventType.VIEW)
        cart = Interaction(1.0, 1, 2, EventType.CART)
        assert cart.stronger_than(view)
        assert not view.stronger_than(cart)
        assert not view.stronger_than(view)


class TestLogHelpers:
    def log(self):
        return [
            Interaction(3.0, 1, 10, EventType.CART),
            Interaction(1.0, 2, 11, EventType.VIEW),
            Interaction(2.0, 1, 12, EventType.SEARCH),
            Interaction(1.0, 1, 13, EventType.CONVERSION),
        ]

    def test_sort_log_by_time(self):
        ordered = sort_log(self.log())
        assert [it.timestamp for it in ordered] == [1.0, 1.0, 2.0, 3.0]

    def test_sort_log_stable_user_tiebreak(self):
        ordered = sort_log(self.log())
        assert [it.user_id for it in ordered[:2]] == [1, 2]

    def test_filter_by_event(self):
        strong = filter_by_event(self.log(), EventType.CART)
        assert {it.event for it in strong} == {EventType.CART, EventType.CONVERSION}

    def test_count_by_event_includes_zero_rows(self):
        counts = count_by_event(self.log())
        assert counts[EventType.VIEW] == 1
        assert counts[EventType.SEARCH] == 1
        assert counts[EventType.CART] == 1
        assert counts[EventType.CONVERSION] == 1
        assert set(counts) == set(EVENT_STRENGTH_ORDER)
