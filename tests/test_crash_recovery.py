"""Crash-recoverable daily runs: journal, kill points, gated publish.

The contract under test: for **every** kill point a coordinator can die
at, ``SigmundService.recover()`` resumes the open day idempotently —
completed retailers are not retrained, billed cost is never billed
twice, and the recovered day's report, store versions, per-retailer
costs, and availability match an uninterrupted run.  The publish gate
guarantees no half-published or broken table is ever served.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_cluster
from repro.core.checkpoint import CheckpointFaultPlan, InMemoryCheckpointStorage
from repro.core.grid import GridSpec
from repro.core.journal import JournalError, RunJournal
from repro.core.recovery import KILL_STAGES, CrashPlan
from repro.core.service import SigmundService
from repro.core.training import TrainerSettings
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import (
    PublishRejectedError,
    ServingError,
    SimulatedCrash,
)
from repro.models.base import ScoredItem
from repro.obs.metrics import MetricsRegistry
from repro.serving.gate import GateDecision, PublishGate
from repro.serving.store import RecommendationStore

FAST_SETTINGS = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)

TINY_GRID = GridSpec(
    n_factors=(4,),
    learning_rates=(0.05,),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(False,),
    use_brand=(False,),
    use_price=(False,),
    max_configs=2,
)


def make_dataset(retailer_id: str, seed: int):
    return dataset_from_synthetic(
        generate_retailer(
            RetailerSpec(
                retailer_id=retailer_id,
                n_items=40,
                n_users=25,
                n_events=260,
                taxonomy_depth=2,
                taxonomy_fanout=3,
                seed=seed,
            )
        )
    )


def make_service(n_retailers: int = 2, **kwargs) -> SigmundService:
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=TINY_GRID,
        settings=FAST_SETTINGS,
        **kwargs,
    )
    for i in range(n_retailers):
        service.onboard(make_dataset(f"r{i}", seed=100 + i))
    return service


def summarize(service: SigmundService) -> dict:
    """Everything recovery must reproduce exactly."""
    return {
        "substitutes": service.substitutes_store.versions(),
        "accessories": service.accessories_store.versions(),
        "retailer_costs": {
            rid: pytest.approx(cost)
            for rid, cost in service.retailer_costs().items()
        },
        "total_cost": pytest.approx(service.total_cost()),
    }


def report_key(report) -> tuple:
    return (
        report.day,
        report.sweep_kind,
        report.configs_trained,
        report.configs_failed,
        report.retailers_served,
        report.retailers_stale,
        report.retailers_unserved,
        report.publishes_rejected,
        pytest.approx(report.training_cost),
        pytest.approx(report.inference_cost),
        report.availability,
    )


def run_with_recovery(service: SigmundService, **run_kwargs):
    """Run one day, recovering (possibly repeatedly) after crashes."""
    try:
        return service.run_day(**run_kwargs)
    except SimulatedCrash:
        pass
    while True:
        try:
            report = service.recover()
        except SimulatedCrash:
            continue
        assert report is not None
        return report


# ----------------------------------------------------------------------
# The run journal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_protocol_roundtrip(self):
        journal = RunJournal()
        journal.begin_day(0, {"sweep_kind": "full"})
        assert journal.open_day() == 0
        journal.log_task(0, "train", "r0", {"cost": 1.0})
        assert journal.is_done(0, "train", "r0")
        assert journal.task_payload(0, "train", "r0") == {"cost": 1.0}
        journal.commit_day(0)
        assert journal.open_day() is None
        assert journal.is_committed(0)

    def test_duplicate_task_raises(self):
        """Completed work must never be replayed — the journal enforces it."""
        journal = RunJournal()
        journal.begin_day(0, {})
        journal.log_task(0, "train", "r0")
        with pytest.raises(JournalError, match="never be replayed"):
            journal.log_task(0, "train", "r0")

    def test_rebegin_open_day_is_noop(self):
        journal = RunJournal()
        journal.begin_day(0, {"configs": [1, 2]})
        journal.begin_day(0, {"configs": [3]})  # recovery path
        assert journal.day_intent(0) == {"configs": [1, 2]}

    def test_rebegin_committed_day_raises(self):
        journal = RunJournal()
        journal.begin_day(0, {})
        journal.commit_day(0)
        with pytest.raises(JournalError):
            journal.begin_day(0, {})

    def test_task_before_begin_raises(self):
        with pytest.raises(JournalError):
            RunJournal().log_task(0, "train", "r0")

    def test_completed_and_counts(self):
        journal = RunJournal()
        journal.begin_day(2, {})
        journal.log_task(2, "infer", "cell_a", {"loads": 1})
        journal.log_task(2, "infer", "cell_b", {"loads": 2})
        assert journal.task_count(2, "infer") == 2
        assert set(journal.completed(2, "infer")) == {"cell_a", "cell_b"}


# ----------------------------------------------------------------------
# CrashPlan
# ----------------------------------------------------------------------
class TestCrashPlan:
    def test_first_check_of_stage_fires(self):
        plan = CrashPlan().crash_at("train_task")
        with pytest.raises(SimulatedCrash):
            plan.check("train_task", "r0")
        assert plan.fired == [("train_task", "r0")]

    def test_label_and_nth_matching(self):
        plan = CrashPlan().crash_at("publish", label="r1")
        plan.check("publish", "r0")  # no crash
        with pytest.raises(SimulatedCrash):
            plan.check("publish", "r1")

        nth_plan = CrashPlan().crash_at("infer_cell", nth=1)
        nth_plan.check("infer_cell", "a")
        with pytest.raises(SimulatedCrash):
            nth_plan.check("infer_cell", "b")

    def test_rules_disarm_after_firing(self):
        """Recovery re-executes the same path; a persistent rule would
        crash it forever."""
        plan = CrashPlan().crash_at("wrapup")
        with pytest.raises(SimulatedCrash):
            plan.check("wrapup")
        plan.check("wrapup")  # disarmed
        assert plan.crash_count == 1

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown kill stage"):
            CrashPlan().crash_at("reboot")

    def test_simulated_crash_is_not_an_exception(self):
        """It must pierce every ``except Exception`` / ``except
        SigmundError`` in the stack, like a real coordinator death."""
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)


# ----------------------------------------------------------------------
# The publish gate
# ----------------------------------------------------------------------
GOOD_TABLE = {0: [ScoredItem(1, 0.9)], 1: [ScoredItem(0, 0.4)]}


class TestPublishGate:
    def test_accepts_healthy_table(self):
        gate = PublishGate()
        decision = gate.validate(
            "r0", GOOD_TABLE, 1, RecommendationStore(), n_items=2
        )
        assert decision.accepted
        assert gate.rejections == []

    def test_rejects_empty_table(self):
        gate = PublishGate()
        decision = gate.validate("r0", {}, 1, RecommendationStore(), n_items=10)
        assert not decision.accepted
        assert "empty" in decision.reason

    def test_allow_empty_for_sparse_surface(self):
        gate = PublishGate()
        decision = gate.validate(
            "r0", {}, 1, RecommendationStore(), n_items=10, allow_empty=True
        )
        assert decision.accepted

    def test_rejects_low_coverage(self):
        gate = PublishGate(min_coverage=0.5)
        table = {0: [ScoredItem(1, 0.9)]}
        decision = gate.validate("r0", table, 1, RecommendationStore(), n_items=10)
        assert not decision.accepted
        assert "coverage" in decision.reason

    def test_rejects_non_finite_scores(self):
        gate = PublishGate()
        for bad in (math.nan, math.inf, -math.inf):
            table = {0: [ScoredItem(1, bad)], 1: [ScoredItem(0, 0.2)]}
            decision = gate.validate(
                "r0", table, 1, RecommendationStore(), n_items=2
            )
            assert not decision.accepted
            assert "non-finite" in decision.reason

    def test_rejects_stale_version(self):
        store = RecommendationStore()
        store.load_batch("r0", GOOD_TABLE, version=3)
        gate = PublishGate()
        decision = gate.validate("r0", GOOD_TABLE, 3, store, n_items=2)
        assert not decision.accepted
        assert "not newer" in decision.reason

    def test_rejects_map_collapse(self):
        gate = PublishGate(max_map_drop=0.5)
        decision = gate.validate(
            "r0",
            GOOD_TABLE,
            1,
            RecommendationStore(),
            n_items=2,
            current_map=0.01,
            previous_map=0.40,
        )
        assert not decision.accepted
        assert "collapsed" in decision.reason

    def test_small_map_drop_passes(self):
        gate = PublishGate()
        decision = gate.validate(
            "r0",
            GOOD_TABLE,
            1,
            RecommendationStore(),
            n_items=2,
            current_map=0.35,
            previous_map=0.40,
        )
        assert decision.accepted

    def test_validate_or_raise(self):
        gate = PublishGate()
        with pytest.raises(PublishRejectedError):
            gate.validate_or_raise("r0", {}, 1, RecommendationStore(), n_items=5)


# ----------------------------------------------------------------------
# Store: version monotonicity + rollback
# ----------------------------------------------------------------------
class TestStoreRollback:
    def test_stale_batch_rejected_and_counted(self):
        store = RecommendationStore()
        store.load_batch("r0", GOOD_TABLE, version=2)
        with pytest.raises(ServingError, match="stale batch"):
            store.load_batch("r0", GOOD_TABLE, version=2)
        with pytest.raises(ServingError, match="stale batch"):
            store.load_batch("r0", GOOD_TABLE, version=1)
        assert store.stats.stale_batches_rejected == 2
        assert store.version_of("r0") == 2

    def test_rollback_restores_last_good_table(self):
        store = RecommendationStore()
        store.load_batch("r0", {0: [ScoredItem(1, 0.5)]}, version=1)
        store.load_batch("r0", {0: [ScoredItem(2, 0.7)]}, version=2)
        assert store.rollback("r0") == 1
        assert store.version_of("r0") == 1
        assert store.lookup("r0", 0)[0].item_index == 1
        assert store.stats.rollbacks == 1

    def test_rollback_without_predecessor_raises(self):
        store = RecommendationStore()
        store.load_batch("r0", GOOD_TABLE, version=1)
        with pytest.raises(ServingError, match="no last-good"):
            store.rollback("r0")

    def test_drop_retailer_clears_rollback_state(self):
        store = RecommendationStore()
        store.load_batch("r0", GOOD_TABLE, version=1)
        store.load_batch("r0", GOOD_TABLE, version=2)
        store.drop_retailer("r0")
        with pytest.raises(ServingError):
            store.rollback("r0")


# ----------------------------------------------------------------------
# End-to-end: crash at every kill point, recover, compare
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def baseline_day0():
    """One uninterrupted day-0 run to compare every recovery against."""
    service = make_service()
    report = service.run_day()
    return {
        "summary": summarize(service),
        "report": report_key(report),
        "alerts": report.alerts,
    }


class TestCrashRecoveryEndToEnd:
    @pytest.mark.parametrize("stage", KILL_STAGES)
    def test_recovery_matches_uninterrupted_run(self, stage, baseline_day0):
        crash_plan = CrashPlan().crash_at(stage)
        service = make_service(crash_plan=crash_plan)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        assert crash_plan.crash_count == 1
        assert service.journal.open_day() == 0
        assert service.reports == []  # a crashed day reports nothing

        report = service.recover()
        assert report is not None
        assert service.journal.is_committed(0)
        assert service.recover() is None  # nothing left to resume

        assert report_key(report) == baseline_day0["report"]
        assert report.alerts == baseline_day0["alerts"]
        assert summarize(service) == baseline_day0["summary"]
        # Exactly one journaled training task per retailer: recovery never
        # replayed completed work (log_task would have raised).
        assert service.journal.task_count(0, "train") == len(service.retailers)

    def test_crash_on_incremental_day(self):
        baseline = make_service()
        baseline.run_day()
        baseline.run_day()

        crash_plan = CrashPlan()
        service = make_service(crash_plan=crash_plan)
        service.run_day()
        crash_plan.crash_at("train_epoch")  # armed for day 1 only
        with pytest.raises(SimulatedCrash):
            service.run_day()
        report = service.recover()

        assert report.day == 1
        assert report.sweep_kind == "incremental"
        base = summarize(baseline)
        ours = summarize(service)
        assert ours["substitutes"] == base["substitutes"]
        assert ours["accessories"] == base["accessories"]
        assert ours["total_cost"] == base["total_cost"]
        assert report.availability == baseline.reports[1].availability

    def test_double_crash_double_recovery(self, baseline_day0):
        crash_plan = (
            CrashPlan().crash_at("train_task").crash_at("publish")
        )
        service = make_service(crash_plan=crash_plan)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        with pytest.raises(SimulatedCrash):
            service.recover()
        report = service.recover()
        assert crash_plan.crash_count == 2
        assert report_key(report) == baseline_day0["report"]
        assert summarize(service) == baseline_day0["summary"]

    def test_train_epoch_crash_resumes_from_checkpoint(self, baseline_day0):
        crash_plan = CrashPlan().crash_at("train_epoch")
        service = make_service(crash_plan=crash_plan)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        # The killed config left its epoch-0 checkpoint behind.
        assert service.training.checkpoints.stored_count == 1
        report = service.recover()
        assert report_key(report) == baseline_day0["report"]
        # Recovery restored it instead of retraining from scratch, and
        # completed configs cleaned up after themselves.
        assert service.training.checkpoints.stats.restores >= 1
        assert service.training.checkpoints.stored_count == 0

    def test_corrupt_checkpoint_falls_back_to_cold_start(self, baseline_day0):
        """A crash plus a corrupted checkpoint: recovery still completes
        the day, just without the saved epochs."""
        crash_plan = CrashPlan().crash_at("train_epoch")
        service = make_service(
            crash_plan=crash_plan,
            checkpoint_fault_plan=CheckpointFaultPlan().bit_flip(),
        )
        with pytest.raises(SimulatedCrash):
            service.run_day()
        report = service.recover()
        assert report_key(report) == baseline_day0["report"]
        assert summarize(service) == baseline_day0["summary"]
        assert service.training.checkpoints.stats.corruptions_detected >= 1
        assert service.training.checkpoints.stats.cold_starts >= 1

    def test_publish_mid_crash_never_serves_half_published_pair(self):
        crash_plan = CrashPlan().crash_at("publish_mid")
        service = make_service(crash_plan=crash_plan)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        # Mid-publish: substitutes table landed, accessories did not.
        stage, rid = crash_plan.fired[0]
        assert service.substitutes_store.version_of(rid) == 1
        assert service.accessories_store.version_of(rid) is None

        service.recover()
        # Recovery completed the pair without a bogus "stale version"
        # rejection of the half-published table.
        assert service.substitutes_store.version_of(rid) == 1
        assert service.accessories_store.version_of(rid) == 1
        assert service.gate.rejections == []

    def test_crashed_day_bills_nothing_extra(self, baseline_day0):
        """Cost equality is the double-billing check: if recovery re-ran
        any billed job, total_cost would exceed the uninterrupted run."""
        crash_plan = CrashPlan().crash_at("infer_cell", nth=1)
        service = make_service(crash_plan=crash_plan)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        service.recover()
        assert summarize(service)["total_cost"] == baseline_day0["summary"][
            "total_cost"
        ]


class _RejectEverything(PublishGate):
    def validate(self, retailer_id, *args, **kwargs):
        decision = GateDecision(retailer_id, False, ["forced rejection"])
        self.rejections.append(decision)
        return decision


class TestGatedPublishInService:
    def test_rejected_tables_keep_last_good_serving(self):
        service = make_service()
        service.run_day()
        assert service.substitutes_store.versions() == {"r0": 1, "r1": 1}

        service.gate = _RejectEverything()
        report = service.run_day()

        assert report.publishes_rejected == len(service.retailers)
        assert report.retailers_served == 0
        assert report.retailers_stale == len(service.retailers)
        # Last-good tables still serve on both surfaces.
        assert service.substitutes_store.versions() == {"r0": 1, "r1": 1}
        assert service.accessories_store.versions() == {"r0": 1, "r1": 1}
        # Surfaced, not silent: one availability alert per rejection.
        failures = service.monitor.failures_for_day(1)
        assert len(failures) == len(service.retailers)
        assert all(f.metric == "publish_availability" for f in failures)
        assert all(
            reason.startswith("publish:")
            for reason in report.failure_reasons.values()
        )
        # ...and visible in the freshness report.
        freshness = service.substitutes_store.freshness(
            service.retailers, expected_version=2
        )
        assert set(freshness.values()) == {"stale"}

    def test_clean_run_never_rejects(self):
        service = make_service()
        for _ in range(3):
            report = service.run_day()
            assert report.publishes_rejected == 0
        assert service.gate.rejections == []


# ----------------------------------------------------------------------
# Observability parity: a recovered day seals identical metrics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def metrics_baseline_seal():
    """Canonical day-0 seal JSON from an uninterrupted metrics-enabled run."""
    service = make_service(metrics=MetricsRegistry())
    service.run_day()
    return json.dumps(service.journal.day_seal(0), sort_keys=True)


class TestMetricsParityUnderRecovery:
    @pytest.mark.parametrize("stage", KILL_STAGES)
    def test_recovered_seal_byte_equal(self, stage, metrics_baseline_seal):
        """Day metrics fold exclusively from journaled task payloads, so a
        crash at *any* kill stage followed by recover() must seal the exact
        same fleet/retailer rollups and metric series as a clean run."""
        crash_plan = CrashPlan().crash_at(stage)
        service = make_service(crash_plan=crash_plan, metrics=MetricsRegistry())
        run_with_recovery(service)
        recovered = json.dumps(service.journal.day_seal(0), sort_keys=True)
        assert recovered == metrics_baseline_seal

    def test_seal_carries_day_snapshot(self, metrics_baseline_seal):
        seal = json.loads(metrics_baseline_seal)
        assert seal["schema_version"] == 1
        assert seal["day"] == 0
        assert set(seal["retailers"]) == {"r0", "r1"}
        assert seal["fleet"]["publishes_accepted"] == 2
        assert "metrics" in seal and "counters" in seal["metrics"]

    def test_null_metrics_seal_is_empty_but_committed(self):
        service = make_service()  # NULL_METRICS default
        service.run_day()
        seal = service.journal.day_seal(0)
        assert seal["metrics"]["counters"] == {}
        assert service.monitor.day_snapshot(0) == seal


# ----------------------------------------------------------------------
# Property: every expressible kill point recovers equivalently
# ----------------------------------------------------------------------
_PROPERTY_BASELINE: list = []


@settings(max_examples=12, deadline=None)
@given(
    stage=st.sampled_from(KILL_STAGES),
    nth=st.integers(min_value=0, max_value=2),
)
def test_any_kill_point_recovers_equivalently(stage, nth):
    """For every (stage, nth) kill point — including ones that never fire
    because the day has fewer checks — crash + recover() yields the same
    store versions, per-retailer costs, and availability as an
    uninterrupted run."""
    if not _PROPERTY_BASELINE:
        service = make_service()
        report = service.run_day()
        _PROPERTY_BASELINE.append(
            {"summary": summarize(service), "report": report_key(report)}
        )
    baseline = _PROPERTY_BASELINE[0]

    crash_plan = CrashPlan().crash_at(stage, nth=nth)
    service = make_service(crash_plan=crash_plan)
    report = run_with_recovery(service)

    assert report_key(report) == baseline["report"]
    assert summarize(service) == baseline["summary"]
    assert service.journal.is_committed(0)
    assert service.journal.task_count(0, "train") == len(service.retailers)


# ----------------------------------------------------------------------
# Crash-recovery equivalence under the process fleet executor
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_executor():
    """One 2-worker pool shared by every fleet test in this module (the
    spawn + import cost is paid once)."""
    from repro.fleet.executor import ProcessFleetExecutor

    with ProcessFleetExecutor(n_workers=2) as executor:
        yield executor


class TestCrashRecoveryUnderFleetExecutor:
    """The tentpole equivalence: the process-parallel training fleet must
    preserve every kill-point recovery guarantee of the serial path —
    coordinator crash semantics are replayed from worker event logs, so
    checkpoints, billing, and reports stay identical."""

    def test_clean_fleet_day_matches_serial_baseline(
        self, baseline_day0, fleet_executor
    ):
        service = make_service(executor=fleet_executor)
        report = service.run_day()
        assert report_key(report) == baseline_day0["report"]
        assert summarize(service) == baseline_day0["summary"]

    @pytest.mark.parametrize("stage", KILL_STAGES)
    def test_recovery_matches_serial_baseline(
        self, stage, baseline_day0, fleet_executor
    ):
        crash_plan = CrashPlan().crash_at(stage)
        service = make_service(crash_plan=crash_plan, executor=fleet_executor)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        assert crash_plan.crash_count == 1
        report = service.recover()
        assert report is not None
        assert service.journal.is_committed(0)
        assert report_key(report) == baseline_day0["report"]
        assert report.alerts == baseline_day0["alerts"]
        assert summarize(service) == baseline_day0["summary"]

    def test_train_epoch_crash_leaves_checkpoint_and_resumes(
        self, baseline_day0, fleet_executor
    ):
        """The replayed worker event log produces the same durable
        checkpoint a serial mid-epoch kill leaves behind, and recovery
        restores from it instead of retraining."""
        crash_plan = CrashPlan().crash_at("train_epoch")
        service = make_service(crash_plan=crash_plan, executor=fleet_executor)
        with pytest.raises(SimulatedCrash):
            service.run_day()
        assert service.training.checkpoints.stored_count == 1
        report = service.recover()
        assert report_key(report) == baseline_day0["report"]
        assert service.training.checkpoints.stats.restores >= 1
        assert service.training.checkpoints.stored_count == 0

    def test_fleet_seal_matches_serial_seal(self, fleet_executor):
        """Day metrics fold from per-worker snapshots; the sealed day must
        be byte-identical to the serial registry's."""
        serial = make_service(metrics=MetricsRegistry())
        serial.run_day()
        expected = json.dumps(serial.journal.day_seal(0), sort_keys=True)

        fleet = make_service(metrics=MetricsRegistry(), executor=fleet_executor)
        fleet.run_day()
        sealed = json.dumps(fleet.journal.day_seal(0), sort_keys=True)
        assert sealed == expected


# ----------------------------------------------------------------------
# Offboarding during an open (crashed) day
# ----------------------------------------------------------------------
class TestOffboardPurgesOpenDayState:
    """Regression: ``offboard()`` used to leave the retailer's journaled
    open-day tasks and checkpoint keys behind, so a retailer offboarded
    mid-crash was resurrected by ``recover()`` — its train payload
    replayed into the report, its inference results republished, and its
    model state left restorable in the checkpoint store."""

    def test_offboard_mid_crash_is_not_resurrected_by_recover(self):
        # Crash right before r1's publish: r1's training, retrieval, and
        # inference results are all journaled by then.
        service = make_service(
            metrics=MetricsRegistry(),
            crash_plan=CrashPlan().crash_at("publish", label="r1"),
        )
        with pytest.raises(SimulatedCrash):
            service.run_day()
        assert service.journal.is_done(0, "train", "r1")

        service.offboard("r1")
        assert not service.journal.is_done(0, "train", "r1")
        assert not service.journal.is_done(0, "retrieval", "r1")

        report = service.recover()
        assert service.journal.is_committed(0)
        # The departed tenant appears nowhere: not served, not failed,
        # not in the sealed day record, and its tables never loaded.
        assert "r1" not in report.failed_retailers
        assert report.retailers_served == 1
        assert not service.substitutes_store.has_retailer("r1")
        assert not service.accessories_store.has_retailer("r1")
        assert service.journal.task_count(0, "train") == 1
        assert service.journal.task_count(0, "publish") == 1
        assert '"r1"' not in json.dumps(service.journal.day_seal(0))

    def test_offboard_mid_crash_purges_checkpoints(self):
        storage = InMemoryCheckpointStorage()
        service = make_service(
            metrics=MetricsRegistry(),
            crash_plan=CrashPlan().crash_at("train_epoch", label="r0/m0@e0"),
            checkpoint_storage=storage,
        )
        with pytest.raises(SimulatedCrash):
            service.run_day()
        # The mid-epoch kill left r0's durable checkpoint behind.
        assert storage.keys() == ["day0/r0/m0"]

        service.offboard("r0")
        assert storage.keys() == []
        assert service.training.checkpoints.stored_count == 0

        report = service.recover()
        assert service.journal.is_committed(0)
        assert "r0" not in report.failed_retailers
        assert service.journal.task_count(0, "train") == 1

    def test_offboard_purge_scrubs_journaled_inference_payloads(self):
        # Crash after inference logged but before any publish: the cell
        # payloads hold r1's result tables (derived from tenant data).
        service = make_service(
            metrics=MetricsRegistry(),
            crash_plan=CrashPlan().crash_at("publish"),
        )
        with pytest.raises(SimulatedCrash):
            service.run_day()
        payload = service.journal.task_payload(0, "infer_plan", "assignment")
        assert any("r1" in group for _, group in payload["assignment"])

        service.offboard("r1")
        payload = service.journal.task_payload(0, "infer_plan", "assignment")
        assert all("r1" not in group for _, group in payload["assignment"])
        for cell_payload in service.journal.completed(0, "infer").values():
            assert "r1" not in cell_payload["results"]
            assert "r1" not in cell_payload["failed"]

        report = service.recover()
        assert report.retailers_served == 1
        assert not service.substitutes_store.has_retailer("r1")

    def test_offboard_with_no_open_day_still_works(self):
        service = make_service(metrics=MetricsRegistry())
        service.run_day()
        service.offboard("r1")  # committed day: journal left untouched
        assert service.journal.is_done(0, "train", "r1")
        report = service.run_day()
        assert report.retailers_served == 1
