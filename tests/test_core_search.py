"""Tests for random search and successive halving."""

from __future__ import annotations

import pytest

from repro.core.search import (
    SearchSpace,
    random_search,
    successive_halving,
)
from repro.core.training import TrainerSettings
from repro.exceptions import ConfigError
from repro.rng import make_rng

FAST = TrainerSettings(max_epochs_full=2, max_epochs_incremental=2,
                       sampler="uniform")

SMALL_SPACE = SearchSpace(
    factor_choices=(4, 8),
    learning_rate_range=(0.02, 0.2),
    reg_item_range=(0.001, 0.1),
    reg_context_range=(0.001, 0.1),
    taxonomy_choices=(True,),
    brand_choices=(True,),
    price_choices=(True,),
)


class TestSearchSpace:
    def test_sample_within_bounds(self):
        rng = make_rng(1)
        for trial in range(50):
            params = SMALL_SPACE.sample(rng, seed=trial)
            assert params.n_factors in (4, 8)
            assert 0.02 <= params.learning_rate <= 0.2
            assert 0.001 <= params.reg_item <= 0.1
            assert 0.6 <= params.context_decay <= 0.99

    def test_log_uniform_spreads_orders_of_magnitude(self):
        space = SearchSpace(reg_item_range=(1e-4, 1.0))
        rng = make_rng(2)
        draws = [space.sample(rng, seed=i).reg_item for i in range(200)]
        assert min(draws) < 1e-3
        assert max(draws) > 0.1

    def test_invalid_ranges(self):
        with pytest.raises(ConfigError):
            SearchSpace(learning_rate_range=(0.0, 0.1))
        with pytest.raises(ConfigError):
            SearchSpace(factor_choices=())

    def test_samples_deterministic_per_rng(self):
        a = SMALL_SPACE.sample(make_rng(7), seed=0)
        b = SMALL_SPACE.sample(make_rng(7), seed=0)
        assert a == b


class TestRandomSearch:
    def test_runs_all_trials(self, tiny_dataset):
        outcome = random_search(
            tiny_dataset, SMALL_SPACE, n_trials=4, settings=FAST, seed=1
        )
        assert len(outcome.outputs) == 4
        assert outcome.total_epochs >= 4
        assert 0.0 <= outcome.best.map_at_10 <= 1.0

    def test_best_is_argmax(self, tiny_dataset):
        outcome = random_search(
            tiny_dataset, SMALL_SPACE, n_trials=5, settings=FAST, seed=2
        )
        assert outcome.best.map_at_10 == max(o.map_at_10 for o in outcome.outputs)

    def test_distinct_configs(self, tiny_dataset):
        outcome = random_search(
            tiny_dataset, SMALL_SPACE, n_trials=5, settings=FAST, seed=3
        )
        rates = {o.config.params.learning_rate for o in outcome.outputs}
        assert len(rates) == 5


class TestSuccessiveHalving:
    def test_rung_structure(self, tiny_dataset):
        outcome = successive_halving(
            tiny_dataset, SMALL_SPACE, n_initial=4, eta=2,
            epochs_per_rung=1, settings=FAST, seed=4,
        )
        # Rungs of 4, 2, 1 candidates -> 7 trained outputs total.
        assert len(outcome.outputs) == 7
        assert outcome.total_epochs == 7

    def test_budget_concentrates_on_survivors(self, tiny_dataset):
        outcome = successive_halving(
            tiny_dataset, SMALL_SPACE, n_initial=8, eta=2,
            epochs_per_rung=1, settings=FAST, seed=5,
        )
        # 8 + 4 + 2 + 1 = 15 << 8 * 4 epochs of full training.
        assert outcome.total_epochs == 15

    def test_single_candidate(self, tiny_dataset):
        outcome = successive_halving(
            tiny_dataset, SMALL_SPACE, n_initial=1, eta=2,
            epochs_per_rung=1, settings=FAST, seed=6,
        )
        assert len(outcome.outputs) == 1

    def test_validation(self, tiny_dataset):
        with pytest.raises(ConfigError):
            successive_halving(tiny_dataset, n_initial=0)
        with pytest.raises(ConfigError):
            successive_halving(tiny_dataset, eta=1)

    def test_halving_beats_same_budget_random_often(self, small_dataset):
        """Not a guarantee, but with a shared budget the adaptive search
        should be at least competitive with random search."""
        halving = successive_halving(
            small_dataset, SMALL_SPACE, n_initial=6, eta=2,
            epochs_per_rung=1, settings=FAST, seed=7,
        )
        budget_trials = max(1, halving.total_epochs // FAST.max_epochs_full)
        random_outcome = random_search(
            small_dataset, SMALL_SPACE, n_trials=budget_trials,
            settings=FAST, seed=7,
        )
        assert halving.best.map_at_10 >= random_outcome.best.map_at_10 * 0.7
