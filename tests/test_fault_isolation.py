"""Fault isolation: failure policies, dead letters, graceful degradation.

Covers the failure semantics end to end: the runtime's ``skip_record``
policy and :class:`FaultPlan` injection, per-retailer isolation in the
training and inference pipelines, and the service-level guarantee that
one retailer's bad day degrades that retailer to yesterday's tables
without taking down the fleet.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro import build_cluster
from repro.cluster.cell import Cell, Cluster
from repro.cluster.machine import MachineSpec
from repro.cluster.preemption import PreemptionModel
from repro.core.grid import GridSpec, generate_configs
from repro.core.inference import InferencePipeline
from repro.core.registry import ModelRegistry
from repro.core.service import SigmundService
from repro.core.training import TrainerSettings, TrainingPipeline
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import FaultInjectedError, MapReduceError
from repro.mapreduce.runtime import (
    FAIL_JOB,
    MAX_TASK_ATTEMPTS,
    SKIP_RECORD,
    FaultPlan,
    JobStats,
    MapReduceJob,
    MapReduceRuntime,
)
from repro.mapreduce.splits import uniform_splits

#: Effectively disables pre-emption so scheduling is deterministic.
STABLE_VMS = PreemptionModel(preemptible_mean_uptime_hours=1e9)

FAST_SETTINGS = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)

#: One-config grid so pipeline tests stay fast.
TINY_GRID = GridSpec(
    n_factors=(4,),
    learning_rates=(0.05,),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(False,),
    use_brand=(False,),
    use_price=(False,),
    max_configs=2,
)


def passthrough_job(**overrides) -> MapReduceJob:
    defaults = dict(
        name="pass",
        mapper=lambda record: [(record, record)],
        n_workers=2,
        reduce_record_seconds=0.0,
    )
    defaults.update(overrides)
    return MapReduceJob(**defaults)


def make_dataset(retailer_id: str, seed: int):
    return dataset_from_synthetic(
        generate_retailer(
            RetailerSpec(
                retailer_id=retailer_id,
                n_items=40,
                n_users=25,
                n_events=260,
                taxonomy_depth=2,
                taxonomy_fanout=3,
                seed=seed,
            )
        )
    )


class TestRuntimeFailurePolicies:
    def run_poison(self, policy):
        def mapper(record):
            if record == 3:
                raise ValueError("poison record")
            yield record, record

        job = passthrough_job(mapper=mapper, failure_policy=policy)
        runtime = MapReduceRuntime(preemption_model=STABLE_VMS)
        return runtime.run(job, uniform_splits(list(range(6)), 3))

    def test_fail_job_aborts_on_poison_record(self):
        with pytest.raises(MapReduceError, match="poison"):
            self.run_poison(FAIL_JOB)

    def test_skip_record_dead_letters_poison_record(self):
        outputs, stats = self.run_poison(SKIP_RECORD)
        assert sorted(outputs) == [0, 1, 2, 4, 5]
        assert stats.records_skipped == 1
        assert len(stats.dead_letters) == 1
        letter = stats.dead_letters[0]
        assert letter.record == 3
        assert isinstance(letter.exception, ValueError)
        assert letter.attempts == 1
        # The rest of the task's records still made it through.
        assert stats.tasks_failed == 0

    def test_unknown_failure_policy_rejected(self):
        with pytest.raises(MapReduceError, match="failure policy"):
            passthrough_job(failure_policy="retry_forever")

    def test_fault_plan_mapper_times_limits_faults(self):
        plan = FaultPlan().fail_mapper(lambda r: r % 2 == 0, times=1)
        job = passthrough_job(failure_policy=SKIP_RECORD)
        runtime = MapReduceRuntime(preemption_model=STABLE_VMS, fault_plan=plan)
        outputs, stats = runtime.run(job, uniform_splits(list(range(6)), 2))
        # Only the first even record (0) faults; 2 and 4 pass.
        assert sorted(outputs) == [1, 2, 3, 4, 5]
        assert [letter.record for letter in stats.dead_letters] == [0]
        assert isinstance(stats.dead_letters[0].exception, FaultInjectedError)

    def test_attempt_faults_retry_then_complete(self):
        plan = FaultPlan().fail_attempts(lambda r: r == 0, failures=3)
        job = passthrough_job()
        runtime = MapReduceRuntime(preemption_model=STABLE_VMS, fault_plan=plan)
        outputs, stats = runtime.run(job, uniform_splits([0, 1], 2))
        assert sorted(outputs) == [0, 1]
        assert stats.tasks_failed == 0
        assert stats.dead_letters == []
        # Task 0 burned three doomed attempts plus the one that succeeded.
        assert stats.map_attempts == 4 + 1

    def test_permanent_attempt_fault_dead_letters_whole_task(self):
        plan = FaultPlan().fail_attempts(lambda r: r == 4)
        job = passthrough_job(failure_policy=SKIP_RECORD)
        runtime = MapReduceRuntime(preemption_model=STABLE_VMS, fault_plan=plan)
        outputs, stats = runtime.run(job, uniform_splits(list(range(6)), 3))
        # Records 4 and 5 share the doomed split; neither reaches output.
        assert sorted(outputs) == [0, 1, 2, 3]
        assert stats.tasks_failed == 1
        assert sorted(letter.record for letter in stats.dead_letters) == [4, 5]
        assert all(
            letter.attempts == MAX_TASK_ATTEMPTS for letter in stats.dead_letters
        )
        assert stats.records_skipped == 2

    def test_permanent_attempt_fault_aborts_under_fail_job(self):
        plan = FaultPlan().fail_attempts(lambda r: r == 0)
        job = passthrough_job(failure_policy=FAIL_JOB)
        runtime = MapReduceRuntime(preemption_model=STABLE_VMS, fault_plan=plan)
        with pytest.raises(MapReduceError, match="attempts"):
            runtime.run(job, uniform_splits([0, 1], 2))


class TestTrainingPipelineIsolation:
    def build(self, fault_plan=None, failure_policy=SKIP_RECORD):
        cluster = build_cluster(n_cells=2, machines_per_cell=4)
        registry = ModelRegistry()
        pipeline = TrainingPipeline(
            cluster,
            registry,
            settings=FAST_SETTINGS,
            fault_plan=fault_plan,
            failure_policy=failure_policy,
        )
        datasets = {
            "iso_a": make_dataset("iso_a", seed=11),
            "iso_b": make_dataset("iso_b", seed=12),
        }
        configs = [
            config
            for dataset in datasets.values()
            for config in generate_configs(dataset, TINY_GRID)
        ]
        return pipeline, registry, datasets, configs

    def test_failed_retailer_is_isolated(self):
        plan = FaultPlan().fail_mapper(
            lambda r: getattr(r, "retailer_id", None) == "iso_a"
        )
        pipeline, registry, datasets, configs = self.build(fault_plan=plan)
        outputs, stats = pipeline.run(configs, datasets)
        assert {output.retailer_id for output in outputs} == {"iso_b"}
        assert stats.failed_retailers == ["iso_a"]
        assert stats.configs_failed == sum(
            1 for c in configs if c.retailer_id == "iso_a"
        )
        assert all(f.retailer_id == "iso_a" for f in stats.failures)
        # A failed config must never leave a half-published model behind.
        assert not registry.has_models("iso_a")
        assert registry.has_models("iso_b")

    def test_fail_job_policy_sinks_the_cell_not_the_sweep(self):
        plan = FaultPlan().fail_mapper(
            lambda r: getattr(r, "retailer_id", None) == "iso_a"
        )
        pipeline, registry, datasets, configs = self.build(
            fault_plan=plan, failure_policy=FAIL_JOB
        )
        # Order configs so the retailers land in different cell chunks.
        configs.sort(key=lambda c: c.retailer_id)
        outputs, stats = pipeline.run(configs, datasets)
        assert {output.retailer_id for output in outputs} == {"iso_b"}
        assert stats.failed_retailers == ["iso_a"]
        assert any("cell" in failure.error for failure in stats.failures)

    def test_no_faults_means_no_failures(self):
        pipeline, registry, datasets, configs = self.build()
        outputs, stats = pipeline.run(configs, datasets)
        assert stats.configs_failed == 0
        assert stats.failed_retailers == []
        assert len(outputs) == len(configs)


class TestInferenceCellPairing:
    def test_heaviest_group_lands_on_most_free_cell(self, monkeypatch):
        # Free cpus 48/16/8: shares come out a=2, b=1, c=1 for 4 retailers.
        cluster = Cluster(
            [
                Cell("cell_a", 6, MachineSpec(cpus=8, memory_gb=64)),
                Cell("cell_b", 2, MachineSpec(cpus=8, memory_gb=64)),
                Cell("cell_c", 1, MachineSpec(cpus=8, memory_gb=64)),
            ]
        )
        registry = SimpleNamespace(has_models=lambda rid: True)
        pipeline = InferencePipeline(cluster, registry)
        datasets = {
            "w": SimpleNamespace(n_items=5),
            "x": SimpleNamespace(n_items=4),
            "y": SimpleNamespace(n_items=3),
            "z": SimpleNamespace(n_items=3),
        }

        assignments = {}

        def fake_cell_job(cell_name, group, day, **kwargs):
            assignments[cell_name] = frozenset(group)
            return {}, JobStats(job_name=cell_name), 0, {}

        monkeypatch.setattr(pipeline, "run_cell", fake_cell_job)
        pipeline.run(datasets)
        # FFD bins are {w}=5, {x}=4, {y,z}=6: the heaviest bin must pair
        # with the most-free cell, not with whatever order FFD emitted.
        assert assignments["cell_a"] == frozenset({"y", "z"})
        assert assignments["cell_b"] == frozenset({"w"})
        assert assignments["cell_c"] == frozenset({"x"})


def fault_service(fault_plan, n_retailers=2):
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=TINY_GRID,
        settings=FAST_SETTINGS,
        fault_plan=fault_plan,
    )
    for index in range(n_retailers):
        service.onboard(make_dataset(f"svc_{index}", seed=100 + index))
    return service


class TestServiceGracefulDegradation:
    def test_day_n_failure_serves_stale_tables(self):
        # Day 0 trains clean; from day 1 on, svc_0's training always fails.
        plan = FaultPlan().fail_mapper(
            lambda r: getattr(r, "retailer_id", None) == "svc_0"
            and getattr(r, "day", 0) >= 1
        )
        service = fault_service(plan)

        report0 = service.run_day()
        assert report0.failed_retailers == []
        assert report0.retailers_served == 2
        assert service.substitutes_store.versions() == {"svc_0": 1, "svc_1": 1}

        report1 = service.run_day()
        assert report1.failed_retailers == ["svc_0"]
        assert report1.failure_reasons["svc_0"].startswith("training:")
        assert report1.configs_failed >= 1
        assert report1.retailers_served == 1
        assert report1.retailers_stale == 1
        assert report1.retailers_unserved == 0
        # Everyone is still served => full availability, just staleness.
        assert report1.availability == 1.0
        # The failed retailer keeps yesterday's complete table...
        assert service.substitutes_store.freshness(["svc_0", "svc_1"], 2) == {
            "svc_0": "stale",
            "svc_1": "fresh",
        }
        assert service.substitutes_store.lookup("svc_0", 0) is not None
        # ...and the failure is on the monitor, not swallowed.
        failures = service.monitor.failures_for_day(1)
        assert [(a.retailer_id, a.metric) for a in failures] == [
            ("svc_0", "training_availability")
        ]
        assert report1.alerts >= 1

    def test_day_zero_failure_is_unserved_but_day_completes(self):
        plan = FaultPlan().fail_mapper(
            lambda r: getattr(r, "retailer_id", None) == "svc_0"
        )
        service = fault_service(plan)
        report = service.run_day()
        assert report.failed_retailers == ["svc_0"]
        assert report.retailers_served == 1
        assert report.retailers_unserved == 1
        assert report.availability == pytest.approx(0.5)
        assert not service.substitutes_store.has_retailer("svc_0")
        assert service.substitutes_store.has_retailer("svc_1")
        # The next clean day heals the retailer.
        healed = FaultPlan()  # no rules
        service.training.runtime.fault_plan = healed
        report1 = service.run_day()
        assert report1.failed_retailers == []
        assert service.substitutes_store.has_retailer("svc_0")

    def test_inference_failure_degrades_without_training_loss(self):
        # Poison only inference records, which are (retailer_id, item) tuples.
        plan = FaultPlan().fail_mapper(
            lambda r: isinstance(r, tuple) and r[0] == "svc_0"
        )
        service = fault_service(plan)
        report = service.run_day()
        assert report.failed_retailers == ["svc_0"]
        assert report.failure_reasons["svc_0"].startswith("inference:")
        # Training itself succeeded and published.
        assert service.registry.has_models("svc_0")
        assert report.retailers_served == 1

    def test_run_day_with_fewer_configs_than_cells(self):
        # 2 configs over 4 cells used to crash split_by_capacity outright.
        service = SigmundService(
            build_cluster(n_cells=4, machines_per_cell=2),
            grid=TINY_GRID,
            settings=FAST_SETTINGS,
        )
        service.onboard(make_dataset("lonely", seed=5))
        report = service.run_day()
        assert report.failed_retailers == []
        assert report.configs_trained >= 1
        assert report.retailers_served == 1
        assert service.substitutes_store.has_retailer("lonely")
