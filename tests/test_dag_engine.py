"""Property and unit tests for the DAG engine itself.

The scheduler is the foundation the crash-equivalence suite stands on,
so its own invariants are pinned here independently of the service:
generated DAGs never run a block before its dependencies, cycle
detection raises, identical seeds give identical schedules, and
``max_parallelism=1`` reproduces the deterministic topological order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.journal import RunJournal
from repro.dag import (
    BLOCKED,
    DISABLED,
    FAILED,
    RAN,
    REPLAYED,
    SKIPPED,
    UNSELECTED,
    Block,
    CycleError,
    DagError,
    DayGraph,
    GraphRunner,
)

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def chain(*names, **block_kwargs):
    """A linear graph a -> b -> c ... (each depends on the previous)."""
    graph = DayGraph()
    prev = None
    for name in names:
        deps = (prev,) if prev else ()
        graph.add(Block(name=name, depends_on=deps, **block_kwargs))
        prev = name
    return graph


def build_graph(n, edges, durations=None, log=None, runs=None):
    """``n`` blocks b0..b{n-1} with dependency edges (i, j), i < j."""
    graph = DayGraph()
    deps = {j: [] for j in range(n)}
    for i, j in edges:
        deps[j].append(f"b{i}")
    for j in range(n):
        name = f"b{j}"

        def run(name=name):
            if log is not None:
                log.append(name)
            return {}

        graph.add(
            Block(
                name=name,
                run=run if runs is None else runs.get(name),
                depends_on=tuple(deps[j]),
                duration=durations[j] if durations is not None else 0.0,
            )
        )
    return graph


def descendants(n, edges, root):
    """Transitive dependents of b{root} under edges (i, j)."""
    out = {j: [] for j in range(n)}
    for i, j in edges:
        out[i].append(j)
    seen = set()
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in out[node]:
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return {f"b{i}" for i in seen}


@st.composite
def random_dags(draw, max_blocks=8):
    n = draw(st.integers(min_value=1, max_value=max_blocks))
    edges = []
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                edges.append((i, j))
    durations = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return n, edges, durations


# ----------------------------------------------------------------------
# construction and validation
# ----------------------------------------------------------------------


def test_duplicate_block_name_raises():
    graph = DayGraph([Block(name="a")])
    with pytest.raises(DagError, match="duplicate"):
        graph.add(Block(name="a"))


def test_unknown_dependency_raises():
    graph = DayGraph([Block(name="a", depends_on=("ghost",))])
    with pytest.raises(DagError, match="unknown block 'ghost'"):
        graph.validate()


def test_self_dependency_raises():
    with pytest.raises(DagError, match="depends on itself"):
        Block(name="a", depends_on=("a",))


def test_cycle_detection_raises_with_cycle_named():
    graph = DayGraph(
        [
            Block(name="a", depends_on=("c",)),
            Block(name="b", depends_on=("a",)),
            Block(name="c", depends_on=("b",)),
        ]
    )
    with pytest.raises(CycleError, match="dependency cycle"):
        graph.validate()


def test_bad_failure_policy_and_attempts_raise():
    with pytest.raises(DagError, match="failure policy"):
        Block(name="a", on_failure="explode")
    with pytest.raises(DagError, match="max_attempts"):
        Block(name="a", max_attempts=0)
    with pytest.raises(DagError, match="max_parallelism"):
        GraphRunner(max_parallelism=0)


def test_topological_order_is_declaration_stable():
    graph = DayGraph(
        [
            Block(name="z"),
            Block(name="a"),
            Block(name="m", depends_on=("z", "a")),
            Block(name="b", depends_on=("z",)),
        ]
    )
    # Ties break by declaration order, not name: z before a, m before b
    # once both are ready.
    assert graph.topological_order() == ["z", "a", "m", "b"]


# ----------------------------------------------------------------------
# execution semantics
# ----------------------------------------------------------------------


def test_serial_execution_order_matches_topological_order():
    log = []
    graph = build_graph(5, [(0, 2), (1, 2), (2, 4), (3, 4)], log=log)
    result = GraphRunner(max_parallelism=1).run(graph)
    assert result.order == graph.topological_order()
    assert log == result.order


def test_retry_succeeds_on_later_attempt():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise RuntimeError("transient")
        return {"ok": True}

    graph = DayGraph([Block(name="a", run=flaky, max_attempts=3)])
    result = GraphRunner().run(graph)
    assert result["a"].status == RAN
    assert result["a"].attempts == 3
    assert calls["n"] == 3


def test_failure_with_skip_policy_skips_transitive_dependents_only():
    def boom():
        raise RuntimeError("dead")

    graph = DayGraph(
        [
            Block(name="a", run=boom, max_attempts=2, on_failure="skip"),
            Block(name="b", depends_on=("a",)),
            Block(name="c", depends_on=("b",)),
            Block(name="independent"),
        ]
    )
    result = GraphRunner().run(graph)
    assert result["a"].status == FAILED
    assert result["a"].attempts == 2
    assert result["b"].status == SKIPPED
    assert result["c"].status == SKIPPED
    assert result["independent"].status == RAN


def test_failure_with_halt_policy_reraises():
    def boom():
        raise RuntimeError("dead")

    graph = DayGraph([Block(name="a", run=boom, on_failure="halt")])
    with pytest.raises(RuntimeError, match="dead"):
        GraphRunner().run(graph)


def test_crash_pierces_retry_loop():
    """A BaseException (the coordinator dying) must not be retried."""

    class Crash(BaseException):
        pass

    calls = {"n": 0}

    def crashing():
        calls["n"] += 1
        raise Crash()

    graph = DayGraph([Block(name="a", run=crashing, max_attempts=5)])
    with pytest.raises(Crash):
        GraphRunner().run(graph)
    assert calls["n"] == 1


def test_pre_kill_checks_fire_through_crash_check():
    seen = []
    graph = chain("a", "b")
    graph.block("a").pre_kill = ("stage_a", "label_a")
    graph.block("b").post_kill = ("stage_b", "")
    GraphRunner(crash_check=lambda stage, label: seen.append((stage, label))).run(graph)
    assert seen == [("stage_a", "label_a"), ("stage_b", "")]


def test_disabled_block_is_transparent_to_dependents():
    ran = []
    graph = DayGraph(
        [
            Block(name="a", run=lambda: ran.append("a") or {}),
            Block(
                name="guarded",
                run=lambda: ran.append("guarded") or {},
                depends_on=("a",),
                enabled=lambda: False,
            ),
            Block(
                name="b",
                run=lambda: ran.append("b") or {},
                depends_on=("guarded",),
            ),
        ]
    )
    result = GraphRunner().run(graph)
    assert result["guarded"].status == DISABLED
    assert ran == ["a", "b"]


def test_journal_replay_skips_side_effects_but_folds():
    journal = RunJournal()
    journal.begin_day(0, {})
    ran, folded = [], []

    def make():
        return DayGraph(
            [
                Block(
                    name="a",
                    run=lambda: ran.append("a") or {"value": 7},
                    fold=lambda payload: folded.append(payload["value"]),
                    journal=("phase", "a"),
                )
            ]
        )

    first = GraphRunner(journal=journal, day=0).run(make())
    second = GraphRunner(journal=journal, day=0).run(make())
    assert first["a"].status == RAN
    assert second["a"].status == REPLAYED
    assert ran == ["a"]  # body executed exactly once
    assert folded == [7, 7]  # folded on both executions
    assert journal.task_count(0, "phase") == 1


def test_expansion_adds_blocks_and_dependents_wait_for_them():
    log = []

    def expand(payload):
        return [
            Block(
                name=f"child/{i}",
                run=lambda i=i: log.append(f"child/{i}") or {},
            )
            for i in range(int(payload["n"]))
        ]

    graph = DayGraph(
        [
            Block(name="parent", run=lambda: {"n": 3}, expand=expand),
            Block(
                name="fan_in",
                run=lambda: log.append("fan_in") or {},
                depends_on=("parent",),
            ),
        ]
    )
    result = GraphRunner().run(graph)
    assert sorted(graph.block("fan_in").depends_on) == [
        "child/0",
        "child/1",
        "child/2",
        "parent",
    ]
    assert log[-1] == "fan_in"
    assert {f"child/{i}" for i in range(3)} <= set(result.runs)


def test_unselected_block_blocks_its_dependents():
    graph = chain("a", "b", "c")
    result = GraphRunner().run(graph, select=lambda name: name != "a")
    assert result["a"].status == UNSELECTED
    assert result["b"].status == BLOCKED
    assert result["c"].status == BLOCKED


def test_selection_replays_journaled_blocks_outside_the_selection():
    journal = RunJournal()
    journal.begin_day(0, {})
    journal.log_task(0, "phase", "a", {"x": 1})
    graph = DayGraph(
        [
            Block(name="a", run=lambda: {"x": 1}, journal=("phase", "a")),
            Block(name="b", run=lambda: {}, depends_on=("a",)),
        ]
    )
    result = GraphRunner(journal=journal, day=0).run(
        graph, select=lambda name: name == "b"
    )
    assert result["a"].status == REPLAYED
    assert result["b"].status == RAN


def test_parallel_lanes_overlap_independent_blocks():
    graph = build_graph(2, [], durations=[5.0, 5.0])
    serial = GraphRunner(max_parallelism=1).run(build_graph(2, [], durations=[5.0, 5.0]))
    overlapped = GraphRunner(max_parallelism=2).run(graph)
    assert serial.makespan == 10.0
    assert overlapped.makespan == 5.0
    lanes = {r.lane for r in overlapped.schedule()}
    assert lanes == {0, 1}


# ----------------------------------------------------------------------
# properties over generated DAGs
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(random_dags(), st.integers(min_value=1, max_value=4))
def test_blocks_never_run_before_dependencies(dag, parallelism):
    n, edges, durations = dag
    log = []
    graph = build_graph(n, edges, durations=durations, log=log)
    result = GraphRunner(max_parallelism=parallelism).run(graph)
    position = {name: i for i, name in enumerate(result.order)}
    for i, j in edges:
        dep, blk = f"b{i}", f"b{j}"
        # Body execution order respects the edge...
        assert position[dep] < position[blk]
        # ...and so does the simulated schedule.
        assert result[dep].finish <= result[blk].start
    assert len(result.order) == n
    assert log == result.order


@settings(max_examples=40, deadline=None)
@given(random_dags(), st.integers(min_value=1, max_value=4), st.integers())
def test_identical_seeds_give_identical_schedules(dag, parallelism, seed):
    n, edges, durations = dag

    def run_once():
        graph = build_graph(n, edges, durations=durations)
        result = GraphRunner(max_parallelism=parallelism, seed=seed).run(graph)
        return [
            (r.name, r.lane, r.start, r.finish) for r in result.schedule()
        ], result.order

    assert run_once() == run_once()


@settings(max_examples=40, deadline=None)
@given(random_dags(), st.integers(min_value=1, max_value=4))
def test_lanes_respect_max_parallelism(dag, parallelism):
    n, edges, durations = dag
    graph = build_graph(n, edges, durations=durations)
    result = GraphRunner(max_parallelism=parallelism).run(graph)
    by_lane = {}
    for run in result.schedule():
        assert run.lane is not None and 0 <= run.lane < parallelism
        by_lane.setdefault(run.lane, []).append(run)
    for runs in by_lane.values():
        runs.sort(key=lambda r: (r.start, r.finish))
        for prev, nxt in zip(runs, runs[1:]):
            assert prev.finish <= nxt.start


@settings(max_examples=40, deadline=None)
@given(random_dags())
def test_serial_parallelism_equals_topological_order(dag):
    n, edges, durations = dag
    graph = build_graph(n, edges, durations=durations)
    expected = graph.topological_order()
    result = GraphRunner(max_parallelism=1).run(graph)
    assert result.order == expected


@settings(max_examples=40, deadline=None)
@given(random_dags(), st.data())
def test_failed_block_skips_exactly_its_descendants(dag, data):
    n, edges, durations = dag
    failing = data.draw(st.integers(min_value=0, max_value=n - 1))

    def boom():
        raise RuntimeError("dead")

    graph = build_graph(
        n, edges, durations=durations, runs={f"b{failing}": boom}
    )
    for block in graph:
        block.on_failure = "skip"
    result = GraphRunner().run(graph)
    expected_skipped = descendants(n, edges, failing)
    assert result[f"b{failing}"].status == FAILED
    assert {r.name for r in result.runs.values() if r.status == SKIPPED} == (
        expected_skipped
    )
    for name, run in result.runs.items():
        if name != f"b{failing}" and name not in expected_skipped:
            assert run.status == RAN


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=5))
def test_generated_cycles_raise(n, offset):
    graph = DayGraph(
        [
            Block(name=f"b{i}", depends_on=(f"b{(i + 1) % n}",))
            for i in range(n)
        ]
    )
    with pytest.raises(CycleError):
        GraphRunner(max_parallelism=1 + offset % 4).run(graph)
