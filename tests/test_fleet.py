"""The process-parallel training fleet: executors, shared-memory Hogwild,
pickle contracts, crash containment, and byte-identical parity.

Everything the fleet ships across a process boundary must pickle
round-trip exactly, a SIGKILLed worker must be contained (retried, then
dead-lettered) instead of hanging the pool, and a sweep run through the
fleet must be byte-identical to the serial reference run — worker
placement must never move a random draw or a published parameter.
"""

from __future__ import annotations

import os
import pickle
import signal

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import build_cluster
from repro.core.config import ConfigRecord
from repro.core.registry import ModelRegistry
from repro.core.training import TrainerSettings, TrainingPipeline, train_config
from repro.exceptions import ConfigError, SigmundError, WorkerCrashError
from repro.fleet.executor import (
    CRASHED,
    ERROR,
    OK,
    FleetTask,
    ProcessFleetExecutor,
    SerialExecutor,
)
from repro.fleet.hogwild import OPT_PREFIX, SharedMemoryHogwild
from repro.fleet.sharedmem import SharedArrayBlock, attach_shared_arrays
from repro.fleet.tasks import (
    CHECKPOINT_EVENT,
    DISCARD_EVENT,
    TrainTaskSpec,
    WorkerCheckpointRecorder,
    run_train_task,
)
from repro.mapreduce.runtime import (
    FAIL_JOB,
    SKIP_RECORD,
    MapReduceError,
    MapReduceJob,
    MapReduceRuntime,
    RemoteMapSpec,
)
from repro.mapreduce.splits import uniform_splits
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.optim import Adagrad, Sgd
from repro.models.trainer import BPRTrainer
from repro.rng import derive_seed, derive_worker_seed

FAST = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)


# ----------------------------------------------------------------------
# Module-level task functions (spawn workers pickle these by reference)
# ----------------------------------------------------------------------
def _double(payload):
    return payload * 2


def _raise_value_error(payload):
    raise ValueError(f"bad payload {payload!r}")


def _kamikaze(payload):
    """Kill the worker process dead — no exception, no goodbye."""
    os.kill(os.getpid(), signal.SIGKILL)


def _kamikaze_once(path):
    """Die on the first attempt, succeed on the retry (marker on disk)."""
    if os.path.exists(path):
        return "survived"
    with open(path, "w") as handle:
        handle.write("attempt 1")
    os.kill(os.getpid(), signal.SIGKILL)


def _double_or_kill(payload):
    if payload == 13:
        os.kill(os.getpid(), signal.SIGKILL)
    return payload * 2


@pytest.fixture(scope="module")
def pool():
    """One 2-worker pool for the whole module (spawn cost paid once)."""
    with ProcessFleetExecutor(n_workers=2) as executor:
        yield executor


def config_for(dataset, number=0, warm_start=False, day=0, model_kind="bpr", **params):
    return ConfigRecord(
        dataset.retailer_id,
        number,
        BPRHyperParams(n_factors=6, seed=number, **params),
        warm_start=warm_start,
        day=day,
        model_kind=model_kind,
    )


def assert_states_equal(a, b):
    assert sorted(a) == sorted(b)
    for name in a:
        assert a[name].dtype == b[name].dtype
        assert np.array_equal(a[name], b[name]), name


# ----------------------------------------------------------------------
# Pickle round-trips: the fleet's wire format
# ----------------------------------------------------------------------
class TestPickleRoundTrips:
    def test_config_record_roundtrip(self, tiny_dataset):
        config = config_for(tiny_dataset, number=3, warm_start=True, day=2)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_output_record_roundtrip(self, tiny_dataset):
        _, output = train_config(config_for(tiny_dataset), tiny_dataset, FAST)
        clone = pickle.loads(pickle.dumps(output))
        assert clone == output
        assert clone.metrics == output.metrics
        assert clone.map_at_10 == output.map_at_10

    def test_model_state_roundtrip_byte_identical(self, trained_model):
        state = trained_model.get_state()
        clone = pickle.loads(pickle.dumps(state))
        assert_states_equal(clone, state)

    def test_dataset_roundtrip_trains_byte_identical(self, tiny_dataset):
        """The regression that matters: a pickled dataset must produce the
        exact same trained model as the original — any nondeterministic
        or lossy field would silently fork fleet results from serial."""
        clone = pickle.loads(pickle.dumps(tiny_dataset))
        assert clone.retailer_id == tiny_dataset.retailer_id
        assert clone.n_items == tiny_dataset.n_items
        assert clone.n_train_interactions == tiny_dataset.n_train_interactions
        config = config_for(tiny_dataset)
        original_model, original_output = train_config(
            config, tiny_dataset, FAST
        )
        cloned_model, cloned_output = train_config(config, clone, FAST)
        assert cloned_output == original_output
        assert_states_equal(cloned_model.get_state(), original_model.get_state())

    def test_train_task_spec_roundtrip(self, tiny_dataset, trained_model):
        spec = TrainTaskSpec(
            config=config_for(tiny_dataset, warm_start=True, day=1),
            dataset=tiny_dataset,
            settings=FAST,
            warm_state=("bpr", trained_model.get_state()),
            resume=None,
            record_crash_checks=True,
            metrics_enabled=True,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.config == spec.config
        assert clone.settings == spec.settings
        assert clone.warm_state[0] == "bpr"
        assert_states_equal(clone.warm_state[1], spec.warm_state[1])


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestSerialExecutor:
    def test_runs_in_order_and_keys_by_id(self):
        tasks = [FleetTask(str(i), _double, i) for i in range(5)]
        outcomes = SerialExecutor().run_tasks(tasks)
        assert [outcomes[str(i)].value for i in range(5)] == [0, 2, 4, 6, 8]
        assert all(o.status == OK for o in outcomes.values())

    def test_error_is_captured_not_raised(self):
        outcomes = SerialExecutor().run_tasks(
            [FleetTask("bad", _raise_value_error, 1), FleetTask("ok", _double, 2)]
        )
        assert outcomes["bad"].status == ERROR
        assert isinstance(outcomes["bad"].error, ValueError)
        assert outcomes["ok"].value == 4


class TestProcessFleetExecutor:
    def test_runs_tasks_across_workers(self, pool):
        tasks = [FleetTask(str(i), _double, i) for i in range(7)]
        outcomes = pool.run_tasks(tasks)
        assert len(outcomes) == 7
        assert [outcomes[str(i)].value for i in range(7)] == [
            0, 2, 4, 6, 8, 10, 12,
        ]

    def test_task_error_ships_back_and_pool_survives(self, pool):
        outcomes = pool.run_tasks([FleetTask("bad", _raise_value_error, 9)])
        assert outcomes["bad"].status == ERROR
        assert isinstance(outcomes["bad"].error, ValueError)
        # The pool is fully usable afterwards.
        again = pool.run_tasks([FleetTask("ok", _double, 21)])
        assert again["ok"].value == 42

    def test_sigkilled_worker_is_contained(self, pool):
        """The failing-before behavior: a worker dying mid-task used to be
        indistinguishable from a hang.  Now the sentinel flags it, the
        task is retried on a fresh worker, and after max_attempts the
        outcome is CRASHED with a WorkerCrashError."""
        outcomes = pool.run_tasks(
            [FleetTask("doomed", _kamikaze, None), FleetTask("fine", _double, 5)]
        )
        assert outcomes["doomed"].status == CRASHED
        assert isinstance(outcomes["doomed"].error, WorkerCrashError)
        assert outcomes["doomed"].attempts == pool.max_attempts
        # The healthy task and the pool itself are unaffected.
        assert outcomes["fine"].value == 10
        assert pool.run_tasks([FleetTask("x", _double, 1)])["x"].value == 2

    def test_transient_crash_is_retried_to_success(self, pool, tmp_path):
        marker = str(tmp_path / "attempt.marker")
        outcomes = pool.run_tasks([FleetTask("flaky", _kamikaze_once, marker)])
        assert outcomes["flaky"].status == OK
        assert outcomes["flaky"].value == "survived"
        assert outcomes["flaky"].attempts == 2

    def test_invalid_sizing_rejected(self):
        with pytest.raises(SigmundError):
            ProcessFleetExecutor(n_workers=0)
        with pytest.raises(SigmundError):
            ProcessFleetExecutor(max_attempts=0)

    def test_defaults_to_cpu_count(self):
        executor = ProcessFleetExecutor()
        try:
            assert executor.n_workers == (os.cpu_count() or 1)
        finally:
            executor.close()

    def test_closed_pool_rejects_work(self):
        executor = ProcessFleetExecutor(n_workers=1)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(SigmundError):
            executor.run_tasks([FleetTask("x", _double, 1)])


# ----------------------------------------------------------------------
# Worker crashes inside the MapReduce runtime (dead-letter containment)
# ----------------------------------------------------------------------
def _remote_double_job(policy):
    return MapReduceJob(
        name="fleet/doubles",
        mapper=lambda record: [(record, record * 2)],
        failure_policy=policy,
        remote=RemoteMapSpec(
            task_fn=_double_or_kill,
            payload_fn=lambda record: record,
            collect_fn=lambda record, value: [(record, value)],
        ),
    )


class TestRuntimeCrashContainment:
    def test_skip_record_dead_letters_crashed_task(self, pool):
        runtime = MapReduceRuntime(executor=pool)
        records = [1, 13, 4]
        outputs, stats = runtime.run(
            _remote_double_job(SKIP_RECORD), uniform_splits(records, 3)
        )
        assert sorted(outputs) == [2, 8]
        assert len(stats.dead_letters) == 1
        letter = stats.dead_letters[0]
        assert letter.record == 13
        assert isinstance(letter.exception, WorkerCrashError)
        assert letter.attempts == pool.max_attempts
        assert stats.records_skipped == 1

    def test_fail_job_aborts_on_crashed_task(self, pool):
        runtime = MapReduceRuntime(executor=pool)
        with pytest.raises(MapReduceError, match="mapper failed"):
            runtime.run(
                _remote_double_job(FAIL_JOB), uniform_splits([1, 13, 4], 3)
            )
        # Containment: the pool is reusable after both policies.
        assert pool.run_tasks([FleetTask("x", _double, 3)])["x"].value == 6

    def test_without_executor_remote_spec_is_ignored(self):
        runtime = MapReduceRuntime()  # no executor: inline reference path
        outputs, stats = runtime.run(
            _remote_double_job(SKIP_RECORD), uniform_splits([1, 2, 3], 3)
        )
        assert sorted(outputs) == [2, 4, 6]
        assert stats.dead_letters == []


# ----------------------------------------------------------------------
# Byte-identical parity: serial vs SerialExecutor vs process fleet
# ----------------------------------------------------------------------
def _run_pipeline(dataset, configs, executor=None, day=0):
    registry = ModelRegistry()
    pipeline = TrainingPipeline(
        build_cluster(n_cells=1, machines_per_cell=4),
        registry,
        settings=FAST,
        executor=executor,
    )
    outputs, stats = pipeline.run(configs, {dataset.retailer_id: dataset}, day=day)
    states = {
        output.config.key: registry.get(
            output.retailer_id, output.config.model_number
        ).model.get_state()
        for output in outputs
    }
    return outputs, stats, states


class TestPipelineParity:
    def test_fleet_outputs_byte_identical_to_serial(self, tiny_dataset, pool):
        configs = [
            config_for(tiny_dataset, number=0),
            config_for(tiny_dataset, number=1, learning_rate=0.1),
            config_for(tiny_dataset, number=2, model_kind="wals"),
        ]
        serial_out, _, serial_states = _run_pipeline(tiny_dataset, configs)
        inline_out, _, inline_states = _run_pipeline(
            tiny_dataset, configs, executor=SerialExecutor()
        )
        fleet_out, _, fleet_states = _run_pipeline(
            tiny_dataset, configs, executor=pool
        )
        assert inline_out == serial_out
        assert fleet_out == serial_out
        for key in serial_states:
            assert_states_equal(inline_states[key], serial_states[key])
            assert_states_equal(fleet_states[key], serial_states[key])

    def test_run_train_task_matches_train_config(self, tiny_dataset):
        """The worker entry point is the serial Train() in a picklable
        coat: same config, same dataset, same output and state."""
        config = config_for(tiny_dataset, number=5)
        model, output = train_config(config, tiny_dataset, FAST)
        result = run_train_task(
            TrainTaskSpec(config=config, dataset=tiny_dataset, settings=FAST)
        )
        assert result.output == output
        assert result.model_kind == "bpr"
        assert_states_equal(result.model_state, model.get_state())
        assert_states_equal(
            result.optimizer_state, model.optimizer.get_state()
        )


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_factors=st.sampled_from([4, 6]),
    learning_rate=st.sampled_from([0.05, 0.1]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_parallel_equals_serial_property(
    tiny_dataset, pool, n_factors, learning_rate, seed
):
    """Property (fleet determinism contract): for any hyper-parameters,
    the fleet-executed sweep equals the serial one exactly — seeds derive
    from logical lanes, never from process identity."""
    configs = [
        ConfigRecord(
            tiny_dataset.retailer_id,
            number,
            BPRHyperParams(
                n_factors=n_factors, learning_rate=learning_rate, seed=seed + number
            ),
        )
        for number in range(2)
    ]
    serial_out, _, serial_states = _run_pipeline(tiny_dataset, configs)
    fleet_out, _, fleet_states = _run_pipeline(tiny_dataset, configs, executor=pool)
    assert fleet_out == serial_out
    for key in serial_states:
        assert_states_equal(fleet_states[key], serial_states[key])


# ----------------------------------------------------------------------
# Seed derivation: logical lanes, never ambient process identity
# ----------------------------------------------------------------------
class TestDeriveWorkerSeed:
    def test_deterministic(self):
        assert derive_worker_seed(7, 1, 2, "hogwild", 0) == derive_worker_seed(
            7, 1, 2, "hogwild", 0
        )

    def test_lanes_are_disjoint(self):
        seeds = {
            derive_worker_seed(7, p, t, "hogwild", 0)
            for p in range(4)
            for t in range(4)
        }
        assert len(seeds) == 16

    def test_process_and_thread_axes_not_conflated(self):
        assert derive_worker_seed(7, 1, 0) != derive_worker_seed(7, 0, 1)

    def test_namespaced_away_from_plain_streams(self):
        assert derive_worker_seed(7, 0, 0, "x") != derive_seed(7, "x")


# ----------------------------------------------------------------------
# Optimizer state hand-off
# ----------------------------------------------------------------------
class TestOptimizerState:
    def test_adagrad_roundtrip(self):
        opt = Adagrad(0.1)
        opt.register("w", np.zeros((3, 2)))
        param = np.zeros((3, 2))
        opt.step("w", param, 1, np.ones(2))
        state = opt.get_state()
        clone = Adagrad(0.1)
        clone.register("w", np.zeros((3, 2)))
        clone.set_state(state)
        assert np.array_equal(clone.get_state()["w"], state["w"])

    def test_adagrad_set_state_validates(self):
        opt = Adagrad(0.1)
        opt.register("w", np.zeros((3, 2)))
        with pytest.raises(ValueError, match="unregistered"):
            opt.set_state({"nope": np.zeros((3, 2))})
        with pytest.raises(ValueError, match="shape"):
            opt.set_state({"w": np.zeros((2, 2))})

    def test_sgd_state_is_empty_and_strict(self):
        opt = Sgd(0.1)
        assert opt.get_state() == {}
        opt.set_state({})
        with pytest.raises(ValueError, match="stateless"):
            opt.set_state({"w": np.zeros(2)})

    def test_bind_state_shares_storage(self):
        opt = Adagrad(0.1)
        opt.register("w", np.zeros((2, 2)))
        external = np.zeros((2, 2))
        opt.bind_state({"w": external})
        param = np.zeros((2, 2))
        opt.step("w", param, 0, np.full(2, 2.0))
        assert external[0, 0] == pytest.approx(4.0)  # grad^2 accumulated

    def test_model_state_set_matches_get(self, tiny_dataset, default_params):
        model = BPRModel(tiny_dataset.catalog, tiny_dataset.taxonomy, default_params)
        BPRTrainer(model, tiny_dataset, max_epochs=1, seed=5).train()
        state = model.get_state()
        opt_state = model.optimizer.get_state()
        clone = BPRModel(tiny_dataset.catalog, tiny_dataset.taxonomy, default_params)
        clone.set_state(state)
        clone.optimizer.set_state(opt_state)
        assert_states_equal(clone.get_state(), state)
        assert_states_equal(clone.optimizer.get_state(), opt_state)


# ----------------------------------------------------------------------
# Worker-side checkpoint recorder mirrors the manager's interval logic
# ----------------------------------------------------------------------
class _FakeModel:
    def __init__(self):
        self.state = {"w": np.arange(4.0)}

    def get_state(self):
        return {name: values.copy() for name, values in self.state.items()}

    def set_state(self, state):
        self.state = {name: values.copy() for name, values in state.items()}


class TestWorkerCheckpointRecorder:
    def test_interval_decisions_match_manager_semantics(self):
        events = []
        recorder = WorkerCheckpointRecorder(300.0, None, events)
        model = _FakeModel()
        assert recorder.maybe_checkpoint("k", model, 10.0, 0) is True
        assert recorder.maybe_checkpoint("k", model, 200.0, 1) is False
        assert recorder.maybe_checkpoint("k", model, 320.0, 2) is True
        kinds = [event[0] for event in events]
        assert kinds == [CHECKPOINT_EVENT, CHECKPOINT_EVENT]
        assert events[0][1] == 0 and events[1][1] == 2

    def test_discard_resets_clock_and_records(self):
        events = []
        recorder = WorkerCheckpointRecorder(300.0, None, events)
        model = _FakeModel()
        recorder.maybe_checkpoint("k", model, 10.0, 0)
        recorder.discard("k")
        # Clock reset: the next write is immediate again.
        assert recorder.maybe_checkpoint("k", model, 11.0, 1) is True
        assert [event[0] for event in events] == [
            CHECKPOINT_EVENT,
            DISCARD_EVENT,
            CHECKPOINT_EVENT,
        ]

    def test_restore_applies_resume_state(self):
        model = _FakeModel()
        resume_state = {"w": np.full(4, 9.0)}
        recorder = WorkerCheckpointRecorder(300.0, (resume_state, 3), [])
        assert recorder.try_restore("k", model) == 3
        assert np.array_equal(model.state["w"], resume_state["w"])

    def test_no_resume_returns_none(self):
        recorder = WorkerCheckpointRecorder(300.0, None, [])
        assert recorder.try_restore("k", _FakeModel()) is None

    def test_checkpoint_event_snapshots_state(self):
        """The recorded state must be a copy: later training updates in
        the worker must not mutate an already-recorded checkpoint."""
        events = []
        recorder = WorkerCheckpointRecorder(300.0, None, events)
        model = _FakeModel()
        recorder.maybe_checkpoint("k", model, 10.0, 0)
        model.state["w"][...] = -1.0
        assert np.array_equal(events[0][3]["w"], np.arange(4.0))


# ----------------------------------------------------------------------
# Shared-memory blocks
# ----------------------------------------------------------------------
class TestSharedArrayBlock:
    def test_roundtrip_and_alignment(self):
        arrays = {
            "a": np.arange(6.0).reshape(2, 3),
            "b": np.arange(5, dtype=np.int64),
            "c": np.ones((3, 1), dtype=np.float32),
        }
        with SharedArrayBlock(arrays) as block:
            for spec in block.handle.specs:
                assert spec.offset % 64 == 0
            for name, values in arrays.items():
                assert np.array_equal(block.arrays[name], values)
                assert block.arrays[name].dtype == values.dtype

    def test_attach_sees_owner_updates(self):
        with SharedArrayBlock({"w": np.zeros(4)}) as block:
            views, shm = attach_shared_arrays(block.handle)
            try:
                block.arrays["w"][2] = 7.5
                assert views["w"][2] == 7.5
                views["w"][0] = -1.0  # and the other direction
                assert block.arrays["w"][0] == -1.0
            finally:
                shm.close()

    def test_empty_block_rejected(self):
        with pytest.raises(SigmundError):
            SharedArrayBlock({})


# ----------------------------------------------------------------------
# Shared-memory Hogwild
# ----------------------------------------------------------------------
class TestSharedMemoryHogwild:
    def test_single_lane_is_deterministic(self, tiny_dataset, default_params):
        def run():
            model = BPRModel(
                tiny_dataset.catalog, tiny_dataset.taxonomy, default_params
            )
            report = SharedMemoryHogwild(
                model, tiny_dataset, n_processes=1, max_epochs=2, seed=11
            ).train()
            return model.get_state(), report

        state_a, report_a = run()
        state_b, report_b = run()
        assert report_a.epoch_losses == report_b.epoch_losses
        assert_states_equal(state_a, state_b)

    def test_two_lanes_train_the_shared_model(self, tiny_dataset, default_params):
        model = BPRModel(
            tiny_dataset.catalog, tiny_dataset.taxonomy, default_params
        )
        before = model.get_state()
        trainer = SharedMemoryHogwild(
            model, tiny_dataset, n_processes=2, max_epochs=2, seed=11
        )
        report = trainer.train()
        assert report.epochs_run == 2
        assert len(report.epoch_losses) == 2
        assert all(np.isfinite(loss) for loss in report.epoch_losses)
        n_examples = BPRTrainer(
            BPRModel(tiny_dataset.catalog, tiny_dataset.taxonomy, default_params),
            tiny_dataset,
            seed=11,
        ).n_examples
        assert report.sgd_steps == 2 * n_examples
        after = model.get_state()
        assert any(
            not np.array_equal(before[name], after[name]) for name in before
        )
        # Adagrad accumulators came back from the shared segment too.
        assert any(
            float(values.sum()) > 0
            for values in model.optimizer.get_state().values()
        )

    def test_invalid_sizing_rejected(self, tiny_dataset, default_params):
        model = BPRModel(
            tiny_dataset.catalog, tiny_dataset.taxonomy, default_params
        )
        with pytest.raises(ConfigError):
            SharedMemoryHogwild(model, tiny_dataset, n_processes=0)

    def test_opt_prefix_cannot_collide(self):
        assert OPT_PREFIX not in ("item", "context", "bias")
        assert "//" in OPT_PREFIX


# ----------------------------------------------------------------------
# Service-level wiring
# ----------------------------------------------------------------------
class TestServiceWiring:
    def test_default_service_stays_serial(self, tiny_dataset):
        from repro.core.service import SigmundService

        service = SigmundService(build_cluster(n_cells=1, machines_per_cell=2))
        assert service.executor is None
        service.close()  # no-op, never raises

    def test_n_workers_builds_and_owns_a_pool(self):
        from repro.core.service import SigmundService

        with SigmundService(
            build_cluster(n_cells=1, machines_per_cell=2), n_workers=2
        ) as service:
            assert service.executor is not None
            assert service.executor.n_workers == 2
            assert service.training.runtime.executor is service.executor

    def test_injected_executor_is_not_closed(self, pool):
        from repro.core.service import SigmundService

        service = SigmundService(
            build_cluster(n_cells=1, machines_per_cell=2), executor=pool
        )
        service.close()
        # Still alive: the caller owns it (and the module teardown closes it).
        assert pool.run_tasks([FleetTask("x", _double, 2)])["x"].value == 4
