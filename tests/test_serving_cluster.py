"""Tests for the distributed serving tier (shards, replicas, memory/flash)."""

from __future__ import annotations

import pytest

from repro.exceptions import ServingError
from repro.models.base import ScoredItem
from repro.serving.cluster import (
    FAILOVER_PENALTY_MS,
    FLASH_LATENCY_MS,
    MEMORY_LATENCY_MS,
    ServingCluster,
)


def batch(n_items: int, score_of=None):
    """Item -> recommendations; item 0 has the strongest top score."""
    if score_of is None:
        score_of = lambda i: float(n_items - i)
    return {
        item: [ScoredItem((item + 1) % n_items, score_of(item))]
        for item in range(n_items)
    }


@pytest.fixture()
def cluster() -> ServingCluster:
    cluster = ServingCluster(n_nodes=4, n_shards=16, replication=2,
                             hot_fraction=0.25)
    cluster.load_batch("shop", batch(100), version=1)
    return cluster


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ServingError):
            ServingCluster(n_nodes=0)
        with pytest.raises(ServingError):
            ServingCluster(n_nodes=2, replication=3)
        with pytest.raises(ServingError):
            ServingCluster(hot_fraction=1.5)

    def test_replica_nodes_distinct(self):
        cluster = ServingCluster(n_nodes=4, replication=3)
        for shard in range(cluster.n_shards):
            nodes = cluster.replica_nodes(shard)
            assert len({node.node_id for node in nodes}) == 3


class TestLookup:
    def test_every_item_servable(self, cluster):
        for item in range(100):
            result = cluster.lookup("shop", item)
            assert result.version == 1
            assert result.recommendations, f"item {item} lost"

    def test_unknown_retailer(self, cluster):
        with pytest.raises(ServingError):
            cluster.lookup("ghost", 0)

    def test_unknown_item_serves_empty(self, cluster):
        result = cluster.lookup("shop", 999)
        assert result.recommendations == []

    def test_hot_items_served_from_memory(self, cluster):
        """The strongest-scored items sit in the memory tier."""
        hot = cluster.lookup("shop", 0)   # highest top score
        cold = cluster.lookup("shop", 99)  # lowest
        assert hot.tier == "memory"
        assert hot.latency_ms == pytest.approx(MEMORY_LATENCY_MS)
        assert cold.tier == "flash"
        assert cold.latency_ms == pytest.approx(FLASH_LATENCY_MS)

    def test_hot_fraction_respected(self, cluster):
        tiers = [cluster.lookup("shop", item).tier for item in range(100)]
        memory_share = tiers.count("memory") / len(tiers)
        assert 0.15 <= memory_share <= 0.35


class TestFailover:
    def test_single_node_failure_transparent(self, cluster):
        cluster.fail_node(0)
        for item in range(100):
            result = cluster.lookup("shop", item)
            assert result.node_id != 0
        assert cluster.failovers > 0

    def test_failover_adds_latency(self, cluster):
        baseline = {
            item: cluster.lookup("shop", item).latency_ms for item in range(100)
        }
        cluster.fail_node(0)
        slower = 0
        for item in range(100):
            result = cluster.lookup("shop", item)
            if result.latency_ms > baseline[item]:
                slower += 1
        assert slower > 0

    def test_all_replicas_down_fails_loudly(self):
        cluster = ServingCluster(n_nodes=2, n_shards=4, replication=2)
        cluster.load_batch("shop", batch(20), version=1)
        cluster.fail_node(0)
        cluster.fail_node(1)
        with pytest.raises(ServingError):
            cluster.lookup("shop", 0)

    def test_recovery_restores_primary(self, cluster):
        cluster.fail_node(0)
        cluster.lookup("shop", 0)
        cluster.recover_node(0)
        served_by = {cluster.lookup("shop", item).node_id for item in range(100)}
        assert 0 in served_by


class TestBatchRollout:
    def test_version_advances(self, cluster):
        cluster.load_batch("shop", batch(100), version=2)
        assert cluster.version_of("shop") == 2
        assert cluster.lookup("shop", 5).version == 2

    def test_stale_version_rejected(self, cluster):
        with pytest.raises(ServingError):
            cluster.load_batch("shop", batch(100), version=1)

    def test_retailers_independent(self, cluster):
        cluster.load_batch("other", batch(40), version=7)
        assert cluster.version_of("shop") == 1
        assert cluster.version_of("other") == 7
        assert cluster.lookup("other", 3).recommendations
        # Loading "other" must not evict "shop" data.
        assert cluster.lookup("shop", 3).recommendations

    def test_rollout_never_loses_availability(self):
        """During a staged rollout every key stays servable."""
        cluster = ServingCluster(n_nodes=3, n_shards=6, replication=2)
        cluster.load_batch("shop", batch(60), version=1)
        # Simulate mid-rollout: manually install version 2 only on
        # replica 0 of every shard (what the first rollout stage does).
        table = batch(60, score_of=lambda i: float(i))
        per_shard = {}
        for item, recs in table.items():
            shard = cluster.shard_of("shop", item)
            per_shard.setdefault(shard, {})[("shop", item)] = recs
        for shard, entries in per_shard.items():
            node = cluster.replica_nodes(shard)[0]
            node.install(shard, 2, {}, entries)
        versions_seen = set()
        for item in range(60):
            result = cluster.lookup("shop", item)
            assert result.recommendations is not None
            versions_seen.add(result.version)
        # Mixed versions during rollout are expected; unavailability is not.
        assert versions_seen <= {1, 2}


class TestHotPlacement:
    def test_empty_rec_items_land_in_flash(self):
        """Regression: empty-rec items used to be eligible for the memory
        tier — whenever the hot budget exceeded the number of items with
        real recommendations, entries nobody will ever read filled the
        scarce memory slots."""
        cluster = ServingCluster(n_nodes=2, n_shards=4, replication=1,
                                 hot_fraction=0.8)
        table = {item: [] for item in range(10)}
        for item in range(10, 15):
            table[item] = [ScoredItem(0, float(item))]
        cluster.load_batch("shop", table, version=1)
        # n_hot = round(15 * 0.8) = 12 > 5 real items; empties must still
        # all land in flash, never in memory.
        for item in range(10):
            assert cluster.lookup("shop", item).tier == "flash", item
        for item in range(10, 15):
            assert cluster.lookup("shop", item).tier == "memory", item

    def test_all_empty_table_nothing_hot(self):
        cluster = ServingCluster(n_nodes=2, n_shards=4, replication=1,
                                 hot_fraction=1.0)
        cluster.load_batch("shop", {item: [] for item in range(5)}, version=1)
        for node in cluster.nodes:
            assert node.memory_entries() == 0


class TestPerRetailerVersions:
    def test_shared_shard_reports_each_retailers_version(self):
        """Regression: the last retailer to load clobbered every
        co-tenant's reported ``LookupResult.version`` on shared shards."""
        cluster = ServingCluster(n_nodes=2, n_shards=2, replication=2)
        cluster.load_batch("alpha", batch(30), version=5)
        cluster.load_batch("beta", batch(30), version=3)
        for item in range(30):
            assert cluster.lookup("alpha", item).version == 5
            assert cluster.lookup("beta", item).version == 3

    def test_reload_bumps_only_own_version(self):
        cluster = ServingCluster(n_nodes=2, n_shards=2, replication=2)
        cluster.load_batch("alpha", batch(30), version=1)
        cluster.load_batch("beta", batch(30), version=1)
        cluster.load_batch("alpha", batch(30), version=2)
        assert cluster.lookup("alpha", 0).version == 2
        assert cluster.lookup("beta", 0).version == 1


class TestMemoryCapacity:
    def test_overflow_hot_entries_demoted_to_flash(self):
        """``memory_capacity_entries`` is enforced, weakest demoted first."""
        cluster = ServingCluster(n_nodes=1, n_shards=2, replication=1,
                                 hot_fraction=1.0,
                                 memory_capacity_entries=10)
        cluster.load_batch("shop", batch(40), version=1)
        node = cluster.nodes[0]
        assert node.memory_entries() <= 10
        assert node.demotions >= 30
        # The strongest items kept their memory slots (item 0 scores
        # highest in ``batch``), the weakest went to flash.
        assert cluster.lookup("shop", 0).tier == "memory"
        assert cluster.lookup("shop", 39).tier == "flash"
        # Every item is still servable after demotion.
        for item in range(40):
            assert cluster.lookup("shop", item).recommendations

    def test_capacity_shared_across_retailers(self):
        cluster = ServingCluster(n_nodes=1, n_shards=2, replication=1,
                                 hot_fraction=1.0,
                                 memory_capacity_entries=15)
        cluster.load_batch("alpha", batch(20), version=1)
        cluster.load_batch("beta", batch(20), version=1)
        assert cluster.nodes[0].memory_entries() <= 15

    def test_under_capacity_no_demotions(self):
        cluster = ServingCluster(n_nodes=2, n_shards=4, replication=1,
                                 hot_fraction=0.2,
                                 memory_capacity_entries=10_000)
        cluster.load_batch("shop", batch(50), version=1)
        assert all(node.demotions == 0 for node in cluster.nodes)


class TestFailoverLatencyAccounting:
    def test_penalty_accumulates_per_dead_replica_hop(self):
        cluster = ServingCluster(n_nodes=3, n_shards=3, replication=3,
                                 hot_fraction=1.0)
        cluster.load_batch("shop", batch(30), version=1)
        shard = cluster.shard_of("shop", 0)
        first, second, third = cluster.replica_nodes(shard)
        baseline = cluster.lookup("shop", 0).latency_ms

        cluster.fail_node(first.node_id)
        one_hop = cluster.lookup("shop", 0)
        assert one_hop.node_id == second.node_id
        assert one_hop.latency_ms == pytest.approx(
            baseline + FAILOVER_PENALTY_MS
        )

        cluster.fail_node(second.node_id)
        two_hops = cluster.lookup("shop", 0)
        assert two_hops.node_id == third.node_id
        assert two_hops.latency_ms == pytest.approx(
            baseline + 2 * FAILOVER_PENALTY_MS
        )

    def test_no_failover_count_on_primary_hit(self):
        cluster = ServingCluster(n_nodes=4, n_shards=8, replication=2)
        cluster.load_batch("shop", batch(50), version=1)
        for item in range(50):
            cluster.lookup("shop", item)
        assert cluster.failovers == 0

    def test_failovers_counted_per_hop(self):
        cluster = ServingCluster(n_nodes=3, n_shards=3, replication=3)
        cluster.load_batch("shop", batch(30), version=1)
        shard = cluster.shard_of("shop", 0)
        first, second, _ = cluster.replica_nodes(shard)
        cluster.fail_node(first.node_id)
        cluster.fail_node(second.node_id)
        before = cluster.failovers
        cluster.lookup("shop", 0)
        assert cluster.failovers == before + 2


class TestBalance:
    def test_shard_balance_reasonable(self, cluster):
        assert cluster.shard_balance() < 2.0
