"""Tests for seeded RNG helpers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import derive_seed, hash_string, make_rng, spawn


class TestMakeRng:
    def test_int_seed_reproducible(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        a = spawn(make_rng(7), 3)
        b = spawn(make_rng(7), 3)
        draws_a = [g.integers(10**6) for g in a]
        draws_b = [g.integers(10**6) for g in b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 3  # overwhelmingly likely distinct


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)

    def test_components_matter(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, 2) != derive_seed(1, 3)
        assert derive_seed(1, "x", 0) != derive_seed(2, "x", 0)

    def test_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_in_numpy_seed_range(self):
        seed = derive_seed(2**40, "retailer", 10**9)
        assert 0 <= seed < 2**63
        make_rng(seed)  # must be accepted by numpy


class TestHashString:
    def test_stable_known_value(self):
        """Must never change across processes/releases (seeds depend on it)."""
        assert hash_string("sigmund") == hash_string("sigmund")
        assert hash_string("") == 0xCBF29CE484222325 & 0x7FFFFFFFFFFFFFFF

    def test_distinct_strings_distinct_hashes(self):
        values = {hash_string(f"retailer_{i}") for i in range(500)}
        assert len(values) == 500


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=40))
def test_property_hash_string_in_range(text):
    assert 0 <= hash_string(text) < 2**63
