"""Interface contract tests across every Recommender implementation.

The paper leans on model substitutability ("we can easily substitute
[BPR] with the least-squares approach", section VI) — everything
downstream only sees the Recommender interface.  These tests pin the
contract every implementation must satisfy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.model import CoOccurrenceModel
from repro.core.hybrid import HybridRecommender
from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.models.popularity import PopularityModel
from repro.models.wals import WALSHyperParams, WALSModel


def build_bpr(dataset, trained_model):
    return trained_model


def build_wals(dataset, trained_model):
    model = WALSModel(
        dataset.n_items, WALSHyperParams(n_factors=6, n_iterations=2, seed=1)
    )
    model.fit(dataset.train)
    return model


def build_popularity(dataset, trained_model):
    return PopularityModel(dataset.n_items, dataset.train)


def build_cooccurrence(dataset, trained_model):
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    return CoOccurrenceModel(counts)


def build_hybrid(dataset, trained_model):
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    return HybridRecommender(trained_model, CoOccurrenceModel(counts))


BUILDERS = {
    "bpr": build_bpr,
    "wals": build_wals,
    "popularity": build_popularity,
    "cooccurrence": build_cooccurrence,
    "hybrid": build_hybrid,
}


@pytest.fixture(scope="module", params=sorted(BUILDERS))
def model(request, small_dataset, trained_model):
    return BUILDERS[request.param](small_dataset, trained_model)


def ctx(*items) -> UserContext:
    return UserContext(tuple(items), tuple(EventType.VIEW for _ in items))


class TestRecommenderContract:
    def test_score_items_alignment(self, model):
        """Scores are positionally aligned with the requested items."""
        items = [5, 1, 9, 30]
        scores = np.asarray(model.score_items(ctx(2, 7), items))
        assert scores.shape == (4,)
        reversed_scores = np.asarray(model.score_items(ctx(2, 7), items[::-1]))
        assert np.allclose(scores, reversed_scores[::-1])

    def test_scores_finite(self, model):
        scores = np.asarray(model.score_all(ctx(0, 3)))
        assert np.all(np.isfinite(scores))

    def test_scores_deterministic(self, model):
        a = np.asarray(model.score_items(ctx(4), [1, 2, 3]))
        b = np.asarray(model.score_items(ctx(4), [1, 2, 3]))
        assert np.array_equal(a, b)

    def test_recommend_sorted_unique_and_bounded(self, model):
        recs = model.recommend(ctx(6, 8), k=12)
        items = [r.item_index for r in recs]
        scores = [r.score for r in recs]
        assert len(items) == len(set(items))
        assert len(items) <= 12
        assert scores == sorted(scores, reverse=True)
        assert all(0 <= i < model.n_items for i in items)

    def test_recommend_excludes_context_by_default(self, model):
        recs = model.recommend(ctx(10, 11, 12), k=20)
        assert not {10, 11, 12} & {r.item_index for r in recs}

    def test_recommend_can_include_context(self, model):
        recs = model.recommend(ctx(10), k=model.n_items,
                               exclude_context_items=False)
        assert len(recs) == model.n_items

    def test_recommend_respects_candidates(self, model):
        pool = [2, 4, 6, 8]
        recs = model.recommend(ctx(50), k=3, candidates=pool)
        assert all(r.item_index in pool for r in recs)

    def test_rank_of_bounds_and_consistency(self, model):
        context = ctx(1, 2)
        for target in (0, 17, model.n_items - 1):
            rank = model.rank_of(context, target)
            assert 1 <= rank <= model.n_items
        # The top-scored item must rank 1.
        scores = np.asarray(model.score_all(context))
        best = int(np.argmax(scores))
        assert model.rank_of(context, best) >= 1
        assert model.rank_of(context, best) <= int(
            np.sum(scores >= scores[best])
        )

    def test_rank_of_candidates_subset(self, model):
        rank = model.rank_of(ctx(3), 5, candidates=[5, 6, 7])
        assert 1 <= rank <= 3

    def test_empty_candidate_recommend(self, model):
        assert model.recommend(ctx(1), k=5, candidates=[]) == []
