"""Crash-equivalence harness: the DAG orchestrator vs the serial path.

The contract this suite pins: a DAG-scheduled day — uninterrupted, run
with real lane parallelism, crashed at **any** of the 14 kill points and
recovered, or recovered across orchestration modes — produces
byte-identical sealed metrics JSON, identical reports, store versions,
and billed costs to the imperative serial reference run.

Reuses the fixtures of ``tests/test_crash_recovery.py`` (tiny grid,
two-retailer fleet, summarize/report_key) rather than duplicating them.
"""

import json

import pytest

from repro.core.recovery import KILL_STAGES, CrashPlan, SimulatedCrash
from repro.dag import DISABLED, RAN, REPLAYED, UNSELECTED, DagError
from repro.exceptions import SigmundError
from repro.mapreduce.runtime import FaultPlan
from repro.obs.metrics import MetricsRegistry
from tests.test_crash_recovery import make_service, report_key, summarize


def seal_bytes(service, day: int) -> str:
    return json.dumps(service.journal.day_seal(day), sort_keys=True)


@pytest.fixture(scope="module")
def serial_baseline():
    """Two uninterrupted serial days; every DAG run must reproduce them."""
    service = make_service(metrics=MetricsRegistry())
    reports = [service.run_day() for _ in range(2)]
    return {
        "seals": [seal_bytes(service, day) for day in (0, 1)],
        "summary_day0": None,  # summaries below are end-of-day-2 state
        "summary": summarize(service),
        "report_keys": [report_key(r) for r in reports],
    }


@pytest.fixture(scope="module")
def serial_day0():
    """One uninterrupted serial day-0 (the crash suite's comparison)."""
    service = make_service(metrics=MetricsRegistry())
    report = service.run_day()
    return {
        "seal": seal_bytes(service, 0),
        "summary": summarize(service),
        "report_key": report_key(report),
    }


# ----------------------------------------------------------------------
# clean-run equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("max_parallelism", [1, 4])
def test_clean_dag_days_match_serial(serial_baseline, max_parallelism):
    service = make_service(
        metrics=MetricsRegistry(),
        orchestration="dag",
        max_parallelism=max_parallelism,
    )
    reports = [service.run_day() for _ in range(2)]
    for day in (0, 1):
        assert seal_bytes(service, day) == serial_baseline["seals"][day]
    assert summarize(service) == serial_baseline["summary"]
    assert [report_key(r) for r in reports] == serial_baseline["report_keys"]


def test_parallel_schedule_actually_overlaps_independent_work():
    """train(retailer A) overlaps train/infer(retailer B) on real lanes."""
    service = make_service(
        metrics=MetricsRegistry(), orchestration="dag", max_parallelism=4
    )
    service.run_day()
    result = service.last_dag_run
    assert result is not None
    trains = [r for r in result.schedule() if r.name.startswith("train/")]
    assert len(trains) == 2
    # Both retailers' sweeps occupy different lanes over the same window.
    assert trains[0].lane != trains[1].lane
    assert trains[0].start == trains[1].start == 0.0
    serial = make_service(
        metrics=MetricsRegistry(), orchestration="dag", max_parallelism=1
    )
    serial.run_day()
    assert result.makespan < serial.last_dag_run.makespan


# ----------------------------------------------------------------------
# every kill point, crashed and recovered under the DAG runner
# ----------------------------------------------------------------------


@pytest.mark.parametrize("stage", KILL_STAGES)
def test_dag_crash_at_every_kill_point_recovers_byte_identical(
    serial_day0, stage
):
    service = make_service(
        metrics=MetricsRegistry(),
        crash_plan=CrashPlan().crash_at(stage),
        orchestration="dag",
    )
    crashed = False
    try:
        report = service.run_day()
    except SimulatedCrash:
        crashed = True
        report = service.recover()
    assert crashed, f"kill point {stage!r} never fired under the DAG runner"
    assert seal_bytes(service, 0) == serial_day0["seal"]
    assert summarize(service) == serial_day0["summary"]
    assert report_key(report) == serial_day0["report_key"]
    # The recovery replayed at least one journaled block — except for
    # the stages that fire before the first block ever completes
    # (day_begin, and the first train task's pre-kill / mid-epoch kill).
    statuses = {r.status for r in service.last_dag_run.runs.values()}
    if stage not in ("day_begin", "train_task", "train_epoch"):
        assert REPLAYED in statuses


@pytest.mark.parametrize("stage", ["train_logged", "infer_cell", "publish_mid", "wrapup"])
@pytest.mark.parametrize(
    "crash_mode,recover_mode", [("serial", "dag"), ("dag", "serial")]
)
def test_recovery_crosses_orchestration_modes(
    serial_day0, stage, crash_mode, recover_mode
):
    """A day crashed under one orchestrator recovers under the other.

    The journal is the only interface between the two paths, so this
    pins that both write (and replay) the exact same records.
    """
    service = make_service(
        metrics=MetricsRegistry(),
        crash_plan=CrashPlan().crash_at(stage),
        orchestration=crash_mode,
    )
    with pytest.raises(SimulatedCrash):
        service.run_day()
    service.orchestration = recover_mode
    report = service.recover()
    assert seal_bytes(service, 0) == serial_day0["seal"]
    assert summarize(service) == serial_day0["summary"]
    assert report_key(report) == serial_day0["report_key"]


# ----------------------------------------------------------------------
# partial reruns (--blocks)
# ----------------------------------------------------------------------


def test_partial_run_leaves_day_open_then_recovery_completes(serial_day0):
    service = make_service(metrics=MetricsRegistry(), orchestration="dag")
    service.run_day(blocks=["train/r0"])
    assert service.journal.open_day() == 0
    assert service.journal.task_count(0, "train") == 1
    assert service.reports == []  # an open day is not reported yet
    runs = service.last_dag_run.runs
    assert runs["train/r0"].status == RAN
    assert runs["train/r1"].status == UNSELECTED
    assert runs["wrapup"].status == "blocked"

    report = service.recover()
    assert service.journal.is_committed(0)
    assert service.last_dag_run.runs["train/r0"].status == REPLAYED
    assert seal_bytes(service, 0) == serial_day0["seal"]
    assert summarize(service) == serial_day0["summary"]
    assert report_key(report) == serial_day0["report_key"]


def test_selection_closes_over_upstream_dependencies():
    service = make_service(metrics=MetricsRegistry(), orchestration="dag")
    service.run_day(blocks=["retrieval/r1"])
    runs = service.last_dag_run.runs
    # retrieval/r1 pulled its own train block in; nothing else ran.
    assert runs["train/r1"].status == RAN
    assert runs["retrieval/r1"].status in (RAN, DISABLED)
    assert runs["train/r0"].status == UNSELECTED
    assert service.journal.open_day() == 0
    service.recover()
    assert service.journal.is_committed(0)


def test_selection_of_tail_family_widens_to_the_full_day(serial_day0):
    service = make_service(metrics=MetricsRegistry(), orchestration="dag")
    service.run_day(blocks=["publish"])
    assert service.journal.is_committed(0)
    assert seal_bytes(service, 0) == serial_day0["seal"]


def test_unknown_block_selection_raises():
    service = make_service(metrics=MetricsRegistry(), orchestration="dag")
    with pytest.raises(DagError, match="unknown block"):
        service.run_day(blocks=["train/ghost"])
    with pytest.raises(DagError, match="families"):
        service.recover(blocks=["compress/r0"])


def test_serial_orchestration_rejects_blocks():
    service = make_service(metrics=MetricsRegistry())
    with pytest.raises(SigmundError, match="orchestration='dag'"):
        service.run_day(blocks=["train/r0"])


def test_constructor_validates_orchestration_params():
    with pytest.raises(SigmundError, match="orchestration"):
        make_service(orchestration="imperative")
    with pytest.raises(SigmundError, match="max_parallelism"):
        make_service(orchestration="dag", max_parallelism=0)


# ----------------------------------------------------------------------
# single-retailer backfill
# ----------------------------------------------------------------------


def test_backfill_repairs_one_retailer_without_touching_others():
    fault = FaultPlan().fail_mapper(
        lambda record: getattr(record, "retailer_id", None) == "r1", times=1
    )
    service = make_service(
        metrics=MetricsRegistry(), orchestration="dag", fault_plan=fault
    )
    report = service.run_day()
    assert "r1" in report.failed_retailers
    assert service.substitutes_store.version_of("r1") is None

    sealed = seal_bytes(service, 0)
    r0_versions = (
        service.substitutes_store.version_of("r0"),
        service.accessories_store.version_of("r0"),
    )
    r0_cost = service.retailer_costs()["r0"]
    r1_cost_before = service.retailer_costs().get("r1", 0.0)

    outcome = service.backfill_retailer("r1")
    assert outcome["published"] and outcome["version"] == 1
    assert service.substitutes_store.version_of("r1") == 1
    assert service.accessories_store.version_of("r1") == 1

    # No other retailer's tables, versions, or billed costs moved, and
    # the committed day's sealed record is untouched.
    assert (
        service.substitutes_store.version_of("r0"),
        service.accessories_store.version_of("r0"),
    ) == r0_versions
    assert service.retailer_costs()["r0"] == r0_cost
    assert service.retailer_costs()["r1"] > r1_cost_before
    assert seal_bytes(service, 0) == sealed

    # The rerun is billed to the backfilled retailer via the normal
    # chargeback accounts (no free work), and repeating it is refused.
    with pytest.raises(SigmundError, match="already serves"):
        service.backfill_retailer("r1")

    # The journal holds the backfill under its own phases, so the day's
    # original task record is intact.
    assert service.journal.task_count(0, "backfill_train") == 1
    assert service.journal.task_count(0, "train") == 2


def test_backfill_requires_a_committed_day_and_known_retailer():
    service = make_service(metrics=MetricsRegistry(), orchestration="dag")
    with pytest.raises(SigmundError, match="no committed day"):
        service.backfill_retailer("r0")
    service.run_day()
    with pytest.raises(SigmundError):
        service.backfill_retailer("ghost")
    with pytest.raises(SigmundError, match="already serves"):
        service.backfill_retailer("r0")  # nothing failed; nothing to do


def test_backfill_next_day_continues_normally(serial_day0):
    """After a backfill, the next daily run treats the retailer as
    healthy (incremental sweep, fresh publish) — the repair leaves no
    poisoned state behind."""
    fault = FaultPlan().fail_mapper(
        lambda record: getattr(record, "retailer_id", None) == "r1", times=1
    )
    service = make_service(
        metrics=MetricsRegistry(), orchestration="dag", fault_plan=fault
    )
    service.run_day()
    service.backfill_retailer("r1")
    report = service.run_day()
    assert report.failed_retailers == []
    assert report.retailers_served == 2
    assert service.substitutes_store.version_of("r1") == 2
