"""Tests for candidate selection, re-purchase detection, and bin packing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.binpack import (
    contiguous_partition,
    first_fit_decreasing,
    load_balance_ratio,
    makespan,
)
from repro.core.candidates import CandidateSelector, RepurchaseDetector
from repro.data.events import EventType, Interaction
from repro.exceptions import SigmundError


@pytest.fixture(scope="module")
def selector(small_dataset):
    counts = CoOccurrenceCounts.from_interactions(
        small_dataset.n_items, small_dataset.train
    )
    detector = RepurchaseDetector(small_dataset.taxonomy, small_dataset.train)
    return CandidateSelector(
        taxonomy=small_dataset.taxonomy,
        counts=counts,
        catalog=small_dataset.catalog,
        repurchase=detector,
    )


class TestViewBased:
    def test_excludes_query_item(self, selector, small_dataset):
        for item in range(0, small_dataset.n_items, 17):
            assert item not in selector.view_based(item)

    def test_candidates_capped(self, small_dataset):
        counts = CoOccurrenceCounts.from_interactions(
            small_dataset.n_items, small_dataset.train
        )
        tight = CandidateSelector(
            taxonomy=small_dataset.taxonomy,
            counts=counts,
            catalog=small_dataset.catalog,
            max_candidates=10,
        )
        assert len(tight.view_based(0)) <= 10

    def test_larger_k_larger_coverage(self, selector):
        small_k = set(selector.view_based(0, lca_k=1))
        large_k = set(selector.view_based(0, lca_k=3))
        assert len(large_k) >= len(small_k)

    def test_cold_item_falls_back_to_taxonomy(self, selector, small_dataset):
        """An item nobody interacted with still gets candidates."""
        cold_items = set(range(small_dataset.n_items)) - set(
            small_dataset.interacted_items()
        )
        if not cold_items:
            pytest.skip("all items interacted in this fixture")
        cold = min(cold_items)
        candidates = selector.view_based(cold)
        assert candidates, "cold item must get taxonomy-based candidates"

    def test_same_facet_filter(self, selector, small_dataset):
        item = 0
        color = small_dataset.catalog[item].facets.get("color")
        constrained = selector.view_based(item, same_facets=["color"])
        for candidate in constrained:
            assert small_dataset.catalog[candidate].facets.get("color") == color


class TestPurchaseBased:
    def test_excludes_query_and_substitutes(self, selector, small_dataset):
        item = 0
        candidates = selector.purchase_based(item)
        assert item not in candidates
        category = small_dataset.taxonomy.category_of(item)
        is_repurchasable = (
            selector.repurchase is not None
            and selector.repurchase.is_repurchasable(category)
        )
        if not is_repurchasable:
            substitutes = set(small_dataset.taxonomy.lca_k(item, 1))
            assert not (set(candidates) & substitutes)

    def test_repurchasable_categories_keep_substitutes(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        # Fabricate a repurchase-heavy log for category of item 0.
        category = taxonomy.category_of(0)
        peers = [i for i in taxonomy.items_in(category) if i != 0]
        if not peers:
            pytest.skip("category of item 0 has a single item")
        log = []
        t = 0.0
        for user in (1, 2, 3):
            for _ in range(3):
                log.append(Interaction(t, user, 0, EventType.CONVERSION))
                t += 1.0
                log.append(Interaction(t, user, peers[0], EventType.CONVERSION))
                t += 1.0
        counts = CoOccurrenceCounts.from_interactions(small_dataset.n_items, log)
        detector = RepurchaseDetector(taxonomy, log)
        assert detector.is_repurchasable(category)
        selector = CandidateSelector(
            taxonomy=taxonomy,
            counts=counts,
            catalog=small_dataset.catalog,
            repurchase=detector,
        )
        candidates = selector.purchase_based(0)
        assert peers[0] in candidates  # substitute NOT removed


class TestRepurchaseDetector:
    def purchase_log(self):
        return [
            Interaction(0.0, 1, 0, EventType.CONVERSION),
            Interaction(10.0, 1, 0, EventType.CONVERSION),
            Interaction(20.0, 1, 0, EventType.CONVERSION),
            Interaction(0.0, 2, 0, EventType.CONVERSION),
            Interaction(12.0, 2, 0, EventType.CONVERSION),
            Interaction(5.0, 3, 1, EventType.CONVERSION),
        ]

    def test_detects_repeat_categories(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        detector = RepurchaseDetector(taxonomy, self.purchase_log())
        category0 = taxonomy.category_of(0)
        assert detector.is_repurchasable(category0)
        assert category0 in detector.repurchasable_categories()

    def test_single_purchases_not_repurchasable(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        detector = RepurchaseDetector(taxonomy, self.purchase_log())
        category1 = taxonomy.category_of(1)
        if category1 == taxonomy.category_of(0):
            pytest.skip("items 0 and 1 share a category in this fixture")
        assert not detector.is_repurchasable(category1)

    def test_mean_gap(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        detector = RepurchaseDetector(taxonomy, self.purchase_log())
        gap = detector.mean_repurchase_gap(taxonomy.category_of(0))
        assert gap == pytest.approx((10 + 10 + 12) / 3)

    def test_due_for_repurchase(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        detector = RepurchaseDetector(taxonomy, self.purchase_log())
        history = [Interaction(0.0, 9, 0, EventType.CONVERSION)]
        assert detector.due_for_repurchase(history, now=20.0) == [0]
        assert detector.due_for_repurchase(history, now=1.0) == []


class TestBinPacking:
    def test_first_fit_decreasing_balances(self):
        weights = {f"r{i}": w for i, w in enumerate([100, 90, 40, 30, 20, 10, 5, 5])}
        bins = first_fit_decreasing(weights, 3)
        assert sum(len(b) for b in bins) == len(weights)
        assert load_balance_ratio(bins, weights) < 1.25

    def test_beats_contiguous_on_skew(self):
        """The paper's motivation: FFD makespan <= naive contiguous."""
        weights = {i: float(w) for i, w in enumerate([500, 3, 2, 450, 5, 4, 400, 1])}
        ffd = first_fit_decreasing(weights, 4)
        naive = contiguous_partition(list(weights), weights, 4)
        assert makespan(ffd, weights) <= makespan(naive, weights)

    def test_single_bin(self):
        weights = {"a": 1.0, "b": 2.0}
        bins = first_fit_decreasing(weights, 1)
        assert sorted(bins[0]) == ["a", "b"]

    def test_more_bins_than_items(self):
        bins = first_fit_decreasing({"a": 1.0}, 4)
        assert sum(len(b) for b in bins) == 1
        assert len(bins) == 4

    def test_zero_bins_rejected(self):
        with pytest.raises(SigmundError):
            first_fit_decreasing({"a": 1.0}, 0)
        with pytest.raises(SigmundError):
            contiguous_partition(["a"], {"a": 1.0}, 0)

    def test_makespan_empty(self):
        assert makespan([], {}) == 0.0

    def test_deterministic(self):
        weights = {f"k{i}": float(i % 7) + 1 for i in range(30)}
        assert first_fit_decreasing(weights, 5) == first_fit_decreasing(weights, 5)


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=40
    ),
    n_bins=st.integers(min_value=1, max_value=8),
)
def test_property_ffd_within_4_3_of_lower_bound(weights, n_bins):
    """LPT guarantee: makespan <= (4/3 - 1/(3m)) * OPT, and OPT >= max(
    mean load, heaviest item)."""
    table = {i: w for i, w in enumerate(weights)}
    bins = first_fit_decreasing(table, n_bins)
    observed = makespan(bins, table)
    descending = sorted(weights, reverse=True)
    lower_bound = max(sum(weights) / n_bins, descending[0])
    if len(descending) > n_bins:
        # Some bin must hold two of the m+1 largest items.
        lower_bound = max(
            lower_bound, descending[n_bins - 1] + descending[n_bins]
        )
    assert observed <= (4 / 3) * lower_bound + 1e-9
    # conservation
    packed = sorted(key for group in bins for key in group)
    assert packed == sorted(table)


class TestFunnelClassification:
    def make_context(self, small_dataset, items, events):
        from repro.data.sessions import UserContext

        return UserContext(tuple(items), tuple(events))

    def test_short_context_is_early(self, small_dataset):
        from repro.core.candidates import classify_funnel
        from repro.data.events import EventType

        context = self.make_context(small_dataset, (0,), (EventType.CART,))
        assert classify_funnel(context, small_dataset.taxonomy) == "early"

    def test_browsing_across_categories_is_early(self, small_dataset):
        from repro.core.candidates import classify_funnel
        from repro.data.events import EventType

        taxonomy = small_dataset.taxonomy
        anchor = 0
        far = next(
            i for i in range(small_dataset.n_items)
            if taxonomy.lca_distance(i, anchor) >= 3
        )
        context = self.make_context(
            small_dataset, (far, anchor), (EventType.SEARCH, EventType.SEARCH)
        )
        assert classify_funnel(context, taxonomy) == "early"

    def test_converged_strong_intent_is_late(self, small_dataset):
        from repro.core.candidates import classify_funnel
        from repro.data.events import EventType

        taxonomy = small_dataset.taxonomy
        anchor = 0
        category = taxonomy.category_of(anchor)
        peers = [i for i in taxonomy.items_in(category) if i != anchor][:2]
        if not peers:
            pytest.skip("anchor category has one item in this fixture")
        items = tuple(peers) + (anchor,)
        events = (EventType.VIEW, EventType.SEARCH, EventType.CART)[: len(items)]
        context = self.make_context(small_dataset, items, events)
        assert classify_funnel(context, taxonomy) == "late"

    def test_weak_events_stay_early_even_when_converged(self, small_dataset):
        from repro.core.candidates import classify_funnel
        from repro.data.events import EventType

        taxonomy = small_dataset.taxonomy
        category = taxonomy.category_of(0)
        peers = taxonomy.items_in(category)[:3]
        if len(peers) < 2:
            pytest.skip("not enough category peers")
        context = self.make_context(
            small_dataset, tuple(peers),
            tuple(EventType.VIEW for _ in peers),
        )
        assert classify_funnel(context, taxonomy) == "early"


class TestForContext:
    def test_empty_context(self, selector):
        from repro.data.sessions import UserContext

        assert selector.for_context(UserContext.empty()) == []

    def test_late_funnel_candidates_are_tight(self, selector, small_dataset):
        from repro.data.events import EventType
        from repro.data.sessions import UserContext

        taxonomy = small_dataset.taxonomy
        anchor = 0
        peers = [
            i for i in taxonomy.items_in(taxonomy.category_of(anchor))
            if i != anchor
        ][:2]
        if not peers:
            pytest.skip("anchor category has one item")
        late = UserContext(
            tuple(peers) + (anchor,),
            (EventType.VIEW, EventType.SEARCH, EventType.CART)[: len(peers) + 1],
        )
        early = UserContext((anchor,), (EventType.VIEW,))
        tight = selector.for_context(late)
        broad = selector.for_context(early)
        assert tight, "late funnel still yields candidates"
        assert len(tight) <= len(broad)
        for candidate in tight:
            assert taxonomy.lca_distance(candidate, anchor) <= 1
