"""Tests for the leave-last-out holdout split (paper section III-C2)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.events import EventType, Interaction
from repro.data.split import (
    leave_last_out_split,
    per_user_train_counts,
)


def log_for(users: dict) -> list:
    """users: user_id -> list of item indices (in time order)."""
    interactions = []
    for user_id, items in users.items():
        for step, item in enumerate(items):
            interactions.append(
                Interaction(float(step), user_id, item, EventType.VIEW)
            )
    return interactions


class TestLeaveLastOut:
    def test_users_above_threshold_are_held_out(self):
        split = leave_last_out_split(log_for({1: [10, 11, 12]}))
        assert split.num_holdout == 1
        example = split.holdout[0]
        assert example.user_id == 1
        assert example.held_out_item == 12
        assert example.context.item_indices == (10, 11)

    def test_users_at_threshold_stay_in_training(self):
        """Paper: 'every user with more than 2 interactions' is held out."""
        split = leave_last_out_split(log_for({1: [10, 11]}))
        assert split.num_holdout == 0
        assert split.num_train == 2

    def test_train_excludes_held_out_event(self):
        split = leave_last_out_split(log_for({1: [10, 11, 12, 13]}))
        assert split.num_train == 3
        assert [it.item_index for it in split.train] == [10, 11, 12]

    def test_multiple_users_sorted(self):
        split = leave_last_out_split(
            log_for({3: [1, 2, 3], 1: [4, 5, 6], 2: [7, 8]})
        )
        assert [ex.user_id for ex in split.holdout] == [1, 3]

    def test_context_respects_max_context(self):
        split = leave_last_out_split(
            log_for({1: list(range(30))}), max_context=5
        )
        assert len(split.holdout[0].context) == 5

    def test_empty_log(self):
        split = leave_last_out_split([])
        assert split.num_train == 0
        assert split.num_holdout == 0

    def test_per_user_train_counts(self):
        split = leave_last_out_split(log_for({1: [1, 2, 3], 2: [4]}))
        counts = per_user_train_counts(split)
        assert counts == {1: 2, 2: 1}


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=8)
)
def test_property_split_conserves_interactions(sizes):
    """Every interaction lands in train or (exactly one per user) holdout."""
    users = {u: list(range(size)) for u, size in enumerate(sizes)}
    total = sum(sizes)
    split = leave_last_out_split(log_for(users))
    assert split.num_train + split.num_holdout == total
    held_users = {ex.user_id for ex in split.holdout}
    assert held_users == {u for u, size in enumerate(sizes) if size > 2}
