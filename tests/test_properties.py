"""Cross-cutting hypothesis property tests on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cost import ResourcePricing
from repro.cluster.execution import run_with_preemptions
from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel
from repro.core.binpack import first_fit_decreasing, makespan
from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.models.base import ScoredItem
from repro.serving.store import RecommendationStore


# ----------------------------------------------------------------------
# BPR model invariants
# ----------------------------------------------------------------------

contexts = st.lists(
    st.integers(min_value=0, max_value=119), min_size=0, max_size=6
).map(
    lambda items: UserContext(
        tuple(items), tuple(EventType.VIEW for _ in items)
    )
)


@settings(max_examples=20, deadline=None)
@given(context=contexts, seed=st.integers(min_value=0, max_value=100))
def test_property_bpr_scores_are_context_deterministic(context, seed):
    """Same context, same items -> identical scores (pure function)."""
    model = _property_model()
    items = [seed % 120, (seed * 7) % 120]
    a = model.score_items(context, items)
    b = model.score_items(context, items)
    assert np.array_equal(a, b)


_PROPERTY_MODEL = None


def _property_model():
    """A small shared model (hypothesis cannot take pytest fixtures)."""
    global _PROPERTY_MODEL
    if _PROPERTY_MODEL is None:
        from repro.data.generator import RetailerSpec, generate_retailer
        from repro.models.bpr import BPRHyperParams, BPRModel

        retailer = generate_retailer(
            RetailerSpec(retailer_id="prop", n_items=120, n_users=10,
                         n_events=60, seed=1)
        )
        _PROPERTY_MODEL = BPRModel(
            retailer.catalog, retailer.taxonomy,
            BPRHyperParams(n_factors=4, seed=2),
        )
    return _PROPERTY_MODEL


@settings(max_examples=15, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=0, max_value=29),
        ).filter(lambda pair: pair[0] != pair[1]),
        min_size=1,
        max_size=20,
    )
)
def test_property_bpr_state_roundtrip_after_updates(updates, tiny_dataset):
    """get_state/set_state is an exact snapshot at any training point."""
    from repro.models.bpr import BPRHyperParams, BPRModel

    model = BPRModel(
        tiny_dataset.catalog, tiny_dataset.taxonomy,
        BPRHyperParams(n_factors=4, seed=3),
    )
    context = UserContext((0,), (EventType.VIEW,))
    for positive, negative in updates:
        model.sgd_step(context, positive, negative)
    state = model.get_state()
    scores_before = model.score_all(context).copy()
    # More training mutates; restore must bring scores back exactly.
    for positive, negative in updates[:5]:
        model.sgd_step(context, positive, negative)
    model.set_state(state)
    assert np.allclose(model.score_all(context), scores_before)


# ----------------------------------------------------------------------
# Serving store invariants
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    versions=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=10
    )
)
def test_property_store_version_monotonicity(versions):
    """Whatever order loads arrive in, the visible version never goes
    backwards and equals the max accepted version."""
    from repro.exceptions import ServingError

    store = RecommendationStore()
    accepted = []
    for version in versions:
        try:
            store.load_batch("r", {0: [ScoredItem(1, 1.0)]}, version=version)
            accepted.append(version)
        except ServingError:
            pass
    assert store.version_of("r") == max(accepted)
    assert accepted == sorted(accepted)


# ----------------------------------------------------------------------
# Execution-trace invariants
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    work_minutes=st.integers(min_value=1, max_value=240),
    uptime_hours=st.floats(min_value=0.2, max_value=24.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_execution_traces_account_for_all_time(
    work_minutes, uptime_hours, seed
):
    """billed >= useful work; wall == billed (single VM at a time); the
    job always completes; lost work is non-negative."""
    trace = run_with_preemptions(
        work_minutes * 60.0,
        preemption_model=PreemptionModel(
            preemptible_mean_uptime_hours=uptime_hours
        ),
        checkpoint_interval=120.0,
        seed=seed,
    )
    assert trace.billed_seconds >= trace.work_seconds - 1e-9
    assert trace.wall_seconds == pytest.approx(trace.billed_seconds)
    assert trace.lost_work_seconds >= 0
    assert trace.attempts >= 1
    assert trace.preemptions <= trace.attempts


@settings(max_examples=20, deadline=None)
@given(
    cpus=st.integers(min_value=1, max_value=64),
    memory=st.floats(min_value=0.5, max_value=512.0),
    seconds=st.floats(min_value=0.0, max_value=86_400.0),
)
def test_property_preemptible_always_cheaper(cpus, memory, seconds):
    """At equal duration, pre-emptible is never pricier than regular."""
    pricing = ResourcePricing()
    cheap = pricing.cost(VMRequest(cpus, memory, Priority.PREEMPTIBLE), seconds)
    full = pricing.cost(VMRequest(cpus, memory, Priority.REGULAR), seconds)
    assert cheap <= full + 1e-12


# ----------------------------------------------------------------------
# Bin-packing conservation
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    weights=st.dictionaries(
        st.integers(min_value=0, max_value=200),
        st.floats(min_value=0.01, max_value=100.0),
        min_size=1,
        max_size=30,
    ),
    n_bins=st.integers(min_value=1, max_value=6),
)
def test_property_binpacking_conserves_and_bounds(weights, n_bins):
    bins = first_fit_decreasing(weights, n_bins)
    packed = sorted(key for group in bins for key in group)
    assert packed == sorted(weights)
    assert makespan(bins, weights) >= max(weights.values()) - 1e-9
    assert makespan(bins, weights) <= sum(weights.values()) + 1e-9
