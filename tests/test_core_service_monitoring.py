"""Tests for the daily service loop and quality monitoring."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core.grid import GridSpec
from repro.core.monitoring import QualityMonitor
from repro.core.service import SigmundService
from repro.core.training import TrainerSettings
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import DataError

FAST_SETTINGS = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)


def tiny_service(n_retailers=2, **kwargs) -> SigmundService:
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=GridSpec.small(),
        settings=FAST_SETTINGS,
        **kwargs,
    )
    for index in range(n_retailers):
        retailer = generate_retailer(
            RetailerSpec(
                retailer_id=f"svc_{index}",
                n_items=40,
                n_users=25,
                n_events=260,
                taxonomy_depth=2,
                taxonomy_fanout=3,
                seed=100 + index,
            )
        )
        service.onboard(dataset_from_synthetic(retailer))
    return service


class TestMonitor:
    def test_first_day_no_alert(self):
        monitor = QualityMonitor()
        assert monitor.record("r", 0, 0.5) is None

    def test_regression_alert(self):
        monitor = QualityMonitor(regression_threshold=0.3)
        monitor.record("r", 0, 0.5)
        alert = monitor.record("r", 1, 0.2)
        assert alert is not None
        assert alert.drop_fraction == pytest.approx(0.6)
        assert monitor.alerts_for_day(1) == [alert]

    def test_small_drop_no_alert(self):
        monitor = QualityMonitor(regression_threshold=0.3)
        monitor.record("r", 0, 0.5)
        assert monitor.record("r", 1, 0.45) is None

    def test_improvement_no_alert(self):
        monitor = QualityMonitor()
        monitor.record("r", 0, 0.2)
        assert monitor.record("r", 1, 0.8) is None

    def test_fleet_summary(self):
        monitor = QualityMonitor()
        for retailer, value in [("a", 0.2), ("b", 0.4), ("c", 0.9)]:
            monitor.record(retailer, 0, value)
        summary = monitor.fleet_summary(0)
        assert summary["retailers"] == 3.0
        assert summary["mean_map"] == pytest.approx(0.5)

    def test_fleet_summary_empty_day(self):
        assert QualityMonitor().fleet_summary(4)["retailers"] == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            QualityMonitor(regression_threshold=0.0)

    def test_failure_alert_carries_stage(self):
        monitor = QualityMonitor()
        alert = monitor.record_failure(
            "r", 0, stage="training", detail="training: cell died"
        )
        assert alert.kind == "failure"
        assert alert.stage == "training"
        assert alert.metric == "training_availability"
        assert monitor.failures_for_day(0) == [alert]

    def test_regression_alert_is_stage_less(self):
        monitor = QualityMonitor(regression_threshold=0.3)
        monitor.record("r", 0, 0.5)
        alert = monitor.record("r", 1, 0.2)
        assert alert is not None
        assert alert.kind == "regression"
        assert alert.stage == ""

    def test_service_failure_alerts_labeled_with_stage(self):
        """The wrap-up derives the stage label from the failure reason, so
        operators can slice alerts by pipeline stage."""
        from repro.serving.gate import GateDecision, PublishGate

        class _RejectEverything(PublishGate):
            def validate(self, retailer_id, *args, **kwargs):
                decision = GateDecision(retailer_id, False, ["forced"])
                self.rejections.append(decision)
                return decision

        service = tiny_service()
        service.run_day()
        service.gate = _RejectEverything()
        service.run_day()
        failures = service.monitor.failures_for_day(1)
        assert len(failures) == 2
        assert all(alert.stage == "publish" for alert in failures)


class TestService:
    def test_day_zero_is_full_sweep(self):
        service = tiny_service()
        report = service.run_day()
        assert report.sweep_kind == "full"
        assert report.configs_trained > 0
        assert report.retailers_served == 2
        assert report.total_cost > 0

    def test_day_one_is_incremental_and_smaller(self):
        service = tiny_service(top_k_incremental=2)
        full = service.run_day()
        incremental = service.run_day()
        assert incremental.sweep_kind == "incremental"
        assert incremental.configs_trained <= full.configs_trained
        assert incremental.configs_trained == 2 * 2  # top_k per retailer

    def test_periodic_full_restart(self):
        service = tiny_service(full_restart_every=2)
        assert service.run_day().sweep_kind == "full"       # day 0
        assert service.run_day().sweep_kind == "incremental"  # day 1
        assert service.run_day().sweep_kind == "full"       # day 2

    def test_serving_stores_loaded_with_versions(self):
        service = tiny_service()
        service.run_day()
        rid = service.retailers[0]
        assert service.substitutes_store.version_of(rid) == 1
        assert service.accessories_store.version_of(rid) == 1
        service.run_day()
        assert service.substitutes_store.version_of(rid) == 2

    def test_served_recommendations_flow(self):
        service = tiny_service()
        service.run_day()
        rid = service.retailers[0]
        dataset = service._datasets[rid]
        example = dataset.holdout[0]
        recs = service.substitutes_server.recommend(rid, example.context, k=5)
        assert recs, "serving path should return recommendations"

    def test_onboard_duplicate_rejected(self):
        service = tiny_service(n_retailers=1)
        dataset = service._datasets[service.retailers[0]]
        with pytest.raises(DataError):
            service.onboard(dataset)

    def test_update_requires_onboarded(self, tiny_dataset):
        service = tiny_service(n_retailers=1)
        with pytest.raises(DataError):
            service.update_dataset(tiny_dataset)

    def test_offboard_drops_all_artifacts(self):
        service = tiny_service()
        service.run_day()
        victim = service.retailers[0]
        service.offboard(victim)
        assert victim not in service.retailers
        assert not service.registry.has_models(victim)

    def test_offboard_purges_serving_and_repurchase(self):
        """Regression: offboarding used to leave the departed tenant's
        serving tables and re-purchase detector alive — stale data that
        contradicts the store's privacy framing."""
        from repro.exceptions import ServingError

        service = tiny_service()
        service.run_day()
        victim = service.retailers[0]
        survivor = service.retailers[1]
        assert service.substitutes_store.has_retailer(victim)
        assert service.accessories_store.has_retailer(victim)
        service.offboard(victim)
        assert not service.substitutes_store.has_retailer(victim)
        assert not service.accessories_store.has_retailer(victim)
        with pytest.raises(ServingError):
            service.substitutes_store.lookup(victim, 0)
        with pytest.raises(ServingError):
            service.accessories_store.lookup(victim, 0)
        with pytest.raises(DataError):
            service.repurchase_recommendations(victim, user_id=0)
        # The surviving tenant is untouched.
        assert service.substitutes_store.has_retailer(survivor)

    def test_offboard_unknown_retailer_is_noop(self):
        service = tiny_service(n_retailers=1)
        service.offboard("never_onboarded")  # must not raise
        assert service.retailers == ["svc_0"]

    def test_mid_stream_onboarding_gets_full_grid(self):
        service = tiny_service(n_retailers=1)
        service.run_day()
        newcomer = generate_retailer(
            RetailerSpec(
                retailer_id="late_joiner",
                n_items=36,
                n_users=20,
                n_events=200,
                taxonomy_depth=2,
                seed=77,
            )
        )
        service.onboard(dataset_from_synthetic(newcomer))
        report = service.run_day()
        assert report.sweep_kind == "incremental"
        assert service.registry.has_models("late_joiner")
        assert service.registry.model_count("late_joiner") >= 2

    def test_empty_service_day(self):
        service = SigmundService(build_cluster(1, 2), settings=FAST_SETTINGS)
        report = service.run_day()
        assert report.configs_trained == 0
        assert report.retailers_served == 0

    def test_monitor_records_daily(self):
        service = tiny_service()
        service.run_day()
        service.run_day()
        rid = service.retailers[0]
        history = service.monitor.metric_history(rid)
        assert set(history) == {0, 1}


class TestRepurchaseSurface:
    def test_requires_a_daily_run(self):
        service = tiny_service(n_retailers=1)
        with pytest.raises(DataError):
            service.repurchase_recommendations(service.retailers[0], 0)

    def test_due_items_surface(self):
        from repro.data.datasets import RetailerDataset
        from repro.data.events import EventType, Interaction
        from repro.data.split import leave_last_out_split

        service = tiny_service(n_retailers=1)
        rid = service.retailers[0]
        base = service._datasets[rid]
        # Fabricate a repurchase-heavy log: users 0 and 1 buy item 0
        # repeatedly on a 10-time-unit cycle, with filler views so the
        # holdout split leaves the purchases in training.
        log = []
        t = 0.0
        for user in (0, 1):
            for _ in range(3):
                log.append(Interaction(t, user, 0, EventType.CONVERSION))
                t += 10.0
            log.append(Interaction(t, user, 1, EventType.VIEW))
            t += 1.0
        split = leave_last_out_split(log)
        service.update_dataset(
            RetailerDataset(
                retailer_id=rid,
                catalog=base.catalog,
                taxonomy=base.taxonomy,
                train=split.train,
                holdout=split.holdout,
            )
        )
        service.run_day()
        due_soon = service.repurchase_recommendations(rid, 0, now=100.0)
        assert due_soon == [0]
        not_due = service.repurchase_recommendations(rid, 0, now=20.5)
        assert not_due == []

    def test_unknown_user_empty(self):
        service = tiny_service(n_retailers=1)
        service.run_day()
        assert service.repurchase_recommendations(
            service.retailers[0], 10 ** 9
        ) == []


class TestServingWindowAccounting:
    """Serving availability accounting: every request lands in exactly
    one bucket, and the monitor rejects any ledger that says otherwise."""

    BUCKETS = {
        "cache": 20, "coalesced": 5, "fresh": 60, "stale": 6,
        "fallback": 5, "shed": 3, "empty": 1,
    }

    def test_conserved_window_accepted(self):
        monitor = QualityMonitor()
        window = monitor.record_serving_window(1, 100, dict(self.BUCKETS))
        assert window.availability == pytest.approx(0.99)
        assert monitor.serving_window(1) is window
        assert monitor.alerts_for_day(1) == []

    def test_degraded_fraction(self):
        monitor = QualityMonitor()
        window = monitor.record_serving_window(1, 100, dict(self.BUCKETS))
        # stale + fallback + shed + empty = 15 of 100.
        assert window.degraded_fraction == pytest.approx(0.15)

    def test_double_count_rejected(self):
        buckets = dict(self.BUCKETS)
        buckets["stale"] += 4  # a serve counted in two buckets
        with pytest.raises(ValueError, match="double-count or gap"):
            QualityMonitor().record_serving_window(1, 100, buckets)

    def test_gap_rejected(self):
        buckets = dict(self.BUCKETS)
        buckets["fallback"] -= 2  # a serve counted nowhere
        with pytest.raises(ValueError, match="double-count or gap"):
            QualityMonitor().record_serving_window(1, 100, buckets)

    def test_unknown_bucket_rejected(self):
        buckets = dict(self.BUCKETS)
        buckets["degraded"] = 0
        with pytest.raises(ValueError, match="unknown serving bucket"):
            QualityMonitor().record_serving_window(1, 100, buckets)

    def test_negative_count_rejected(self):
        buckets = dict(self.BUCKETS)
        buckets["empty"] = -1
        buckets["fresh"] += 2
        with pytest.raises(ValueError, match="negative"):
            QualityMonitor().record_serving_window(1, 100, buckets)

    def test_availability_floor_alert(self):
        monitor = QualityMonitor()
        buckets = dict(self.BUCKETS)
        window = monitor.record_serving_window(
            1, 100, buckets, availability_floor=0.995
        )
        assert window.availability == pytest.approx(0.99)
        alerts = monitor.alerts_for_day(1)
        assert len(alerts) == 1
        assert alerts[0].metric == "serving_availability"
        assert alerts[0].stage == "serving"
        assert alerts[0].kind == "failure"

    def test_floor_met_no_alert(self):
        monitor = QualityMonitor()
        monitor.record_serving_window(
            1, 100, dict(self.BUCKETS), availability_floor=0.99
        )
        assert monitor.alerts_for_day(1) == []
