"""Tests for charge-back attribution and dynamic VM sizing (extensions).

The paper decided against billing retailers (section V) but the design
discussion makes attribution an obvious extension; dynamic VM sizing is
section IV-B2's "dynamically sized virtual machine".
"""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.cluster.cost import CostLedger
from repro.core.config import ConfigRecord
from repro.core.grid import GridSpec
from repro.core.registry import ModelRegistry
from repro.core.service import SigmundService
from repro.core.sweep import SweepPlanner
from repro.core.training import (
    TrainerSettings,
    TrainingPipeline,
    estimate_model_memory_gb,
)
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import ClusterError
from repro.models.bpr import BPRHyperParams

FAST = TrainerSettings(max_epochs_full=2, max_epochs_incremental=1,
                       sampler="uniform")


class TestLedgerAttribution:
    def test_attribute_accumulates(self):
        ledger = CostLedger()
        ledger.attribute("chargeback/r1", 1.5)
        ledger.attribute("chargeback/r1", 0.5)
        ledger.attribute("chargeback/r2", 1.0)
        assert ledger.total("chargeback/r1") == pytest.approx(2.0)
        assert ledger.accounts_with_prefix("chargeback/") == {
            "chargeback/r1": 2.0,
            "chargeback/r2": 1.0,
        }

    def test_negative_amount_rejected(self):
        with pytest.raises(ClusterError):
            CostLedger().attribute("x", -0.1)


class TestMemoryEstimate:
    def test_scales_with_items_and_factors(self, small_dataset, tiny_dataset):
        big = ConfigRecord("a", 0, BPRHyperParams(n_factors=64))
        small = ConfigRecord("a", 1, BPRHyperParams(n_factors=8))
        assert estimate_model_memory_gb(
            big, small_dataset
        ) > estimate_model_memory_gb(small, small_dataset)
        same = ConfigRecord("a", 2, BPRHyperParams(n_factors=16))
        assert estimate_model_memory_gb(
            same, small_dataset
        ) > estimate_model_memory_gb(same, tiny_dataset)

    def test_has_floor(self, tiny_dataset):
        config = ConfigRecord("a", 0, BPRHyperParams(n_factors=4))
        assert estimate_model_memory_gb(config, tiny_dataset) >= 0.5


class TestPipelineChargebacks:
    def test_attribution_proportional_and_complete(self):
        big = dataset_from_synthetic(
            generate_retailer(
                RetailerSpec(retailer_id="cb_big", n_items=80, n_users=60,
                             n_events=900, taxonomy_depth=2, seed=1)
            )
        )
        small = dataset_from_synthetic(
            generate_retailer(
                RetailerSpec(retailer_id="cb_small", n_items=30, n_users=15,
                             n_events=120, taxonomy_depth=2, seed=2)
            )
        )
        cluster = build_cluster(n_cells=1, machines_per_cell=4)
        registry = ModelRegistry()
        pipeline = TrainingPipeline(cluster, registry, settings=FAST, seed=0)
        plan = SweepPlanner(GridSpec.small()).full_sweep([big, small])
        datasets = {d.retailer_id: d for d in (big, small)}
        _, stats = pipeline.run(plan.configs, datasets)

        charges = pipeline.ledger.accounts_with_prefix("chargeback/")
        assert set(charges) == {"chargeback/cb_big", "chargeback/cb_small"}
        # Attribution sums to the billed job cost and follows data volume.
        assert sum(charges.values()) == pytest.approx(stats.total_cost, rel=1e-6)
        assert charges["chargeback/cb_big"] > charges["chargeback/cb_small"]


class TestServiceChargebacks:
    def test_retailer_costs_view(self):
        service = SigmundService(
            build_cluster(n_cells=1, machines_per_cell=4),
            grid=GridSpec.small(),
            settings=FAST,
        )
        for index, items in enumerate((60, 25)):
            retailer = generate_retailer(
                RetailerSpec(
                    retailer_id=f"svc_cb_{index}", n_items=items,
                    n_users=max(10, items // 2), n_events=items * 4,
                    taxonomy_depth=2, seed=50 + index,
                )
            )
            service.onboard(dataset_from_synthetic(retailer))
        service.run_day()
        costs = service.retailer_costs()
        assert set(costs) == {"svc_cb_0", "svc_cb_1"}
        assert costs["svc_cb_0"] > costs["svc_cb_1"]
        assert sum(costs.values()) == pytest.approx(
            service.total_cost(), rel=1e-6
        )
