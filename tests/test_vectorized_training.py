"""Tests for the vectorized mini-batch training/scoring path.

The contract under test: ``sgd_step_batch`` with a batch of one
non-colliding triple reproduces the scalar ``sgd_step`` bit-for-bit (for
both optimizers), larger batches follow standard mini-batch semantics and
reach the same quality, and the cached effective-item matrix agrees with
per-item assembly while staying coherent across updates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import dataset_from_synthetic
from repro.data.events import EventType
from repro.data.generator import RetailerSpec, generate_retailer
from repro.data.sessions import UserContext
from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams, BPRModel, concat_ranges
from repro.models.trainer import BPRTrainer

#: A small synthetic retailer shared by the property tests (hypothesis
#: cannot take pytest fixtures).
_RETAILER = generate_retailer(
    RetailerSpec(
        retailer_id="vec_prop",
        n_items=60,
        n_users=40,
        n_events=500,
        taxonomy_depth=2,
        taxonomy_fanout=3,
        n_brands=4,
        seed=11,
    )
)
_DATASET = dataset_from_synthetic(_RETAILER)

#: Feature tables off: the scalar loop updates shared feature rows
#: sequentially (positive side first), which no batched formulation can
#: reproduce bit-for-bit; the exact-equivalence contract is defined on
#: non-colliding triples.
_NO_FEATURE_PARAMS = dict(
    n_factors=8,
    learning_rate=0.05,
    use_taxonomy=False,
    use_brand=False,
    use_price=False,
)


def _non_colliding_triples(rng: np.random.Generator, count: int):
    """Random triples whose context items are unique and exclude pos/neg."""
    triples = []
    n_items = _DATASET.n_items
    while len(triples) < count:
        size = int(rng.integers(0, 5))
        members = rng.choice(n_items, size=size + 2, replace=False)
        context = UserContext.from_pairs(
            [(rng.choice(list(_EVENTS)), int(item)) for item in members[:size]]
        )
        triples.append((context, int(members[size]), int(members[size + 1])))
    return triples


_EVENTS = (EventType.VIEW, EventType.SEARCH, EventType.CART, EventType.CONVERSION)


def _csr_of(model: BPRModel, context: UserContext):
    indptr = np.array([0, len(context)], dtype=np.int64)
    rows = np.asarray(context.item_indices, dtype=np.int64)
    return indptr, rows, model.context_weights(context)


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([2, 7]), np.array([3, 2]))
        assert out.tolist() == [2, 3, 4, 7, 8]

    def test_empty_ranges_mixed_in(self):
        out = concat_ranges(np.array([5, 1, 9]), np.array([0, 2, 0]))
        assert out.tolist() == [1, 2]

    def test_all_empty(self):
        assert concat_ranges(np.zeros(0), np.zeros(0)).size == 0


class TestEffectiveVectorsBatch:
    def test_matches_per_item_assembly(self, trained_model):
        items = np.array([0, 3, 3, 57, trained_model.n_items - 1])
        batch = trained_model.effective_item_vectors(items)
        for row, item in enumerate(items):
            assert np.allclose(
                batch[row], trained_model.effective_item_vector(int(item))
            )

    def test_matrix_cache_reused_until_update(self, small_dataset, default_params):
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        first = model.effective_item_matrix()
        assert model.effective_item_matrix() is first  # cached
        model.sgd_step(UserContext((1,), (EventType.VIEW,)), 2, 3)
        second = model.effective_item_matrix()
        assert second is not first
        assert not np.allclose(second[2], first[2])

    def test_score_all_consistent_after_updates(self, small_dataset, default_params):
        """Scoring, updating, then scoring again must see the update."""
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        context = UserContext((4, 9), (EventType.VIEW, EventType.CART))
        before = model.score_all(context)
        for _ in range(5):
            model.sgd_step(context, 7, 21)
        after = model.score_all(context)
        assert after[7] > before[7]

    def test_set_state_invalidates_cache(self, small_dataset, default_params):
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        matrix = model.effective_item_matrix().copy()
        state = model.get_state()
        state["item"] = state["item"] + 1.0
        model.set_state(state)
        assert np.allclose(model.effective_item_matrix(), matrix + 1.0)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    optimizer=st.sampled_from(["sgd", "adagrad"]),
)
def test_scalar_and_batch_step_produce_same_parameters(seed, optimizer):
    """Property: per-triple, the batch path equals the scalar reference
    within 1e-9 for both optimizers (same gradients, same adaptive rates).
    """
    params = BPRHyperParams(optimizer=optimizer, seed=3, **_NO_FEATURE_PARAMS)
    scalar_model = BPRModel(_DATASET.catalog, _DATASET.taxonomy, params)
    batch_model = BPRModel(_DATASET.catalog, _DATASET.taxonomy, params)
    rng = np.random.default_rng(seed)
    losses = []
    for context, positive, negative in _non_colliding_triples(rng, 40):
        scalar_loss = scalar_model.sgd_step(context, positive, negative)
        batch_loss = batch_model.sgd_step_batch(
            _csr_of(batch_model, context),
            np.array([positive]),
            np.array([negative]),
        )
        losses.append((scalar_loss, float(batch_loss[0])))
    for scalar_loss, batch_loss in losses:
        assert scalar_loss == pytest.approx(batch_loss, abs=1e-9)
    for name, param in scalar_model._parameters().items():
        np.testing.assert_allclose(
            param,
            batch_model._parameters()[name],
            atol=1e-9,
            err_msg=f"{optimizer}: parameter {name!r} diverged",
        )


class TestBatchStep:
    def test_empty_batch_is_noop(self, fresh_model):
        state = fresh_model.get_state()
        losses = fresh_model.sgd_step_batch(
            (np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0)),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert losses.size == 0
        for name, param in fresh_model._parameters().items():
            assert np.array_equal(param, state[name])

    def test_batch_with_features_updates_feature_tables(
        self, small_dataset, default_params
    ):
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        before = model.taxonomy_embeddings.copy()
        context = UserContext((1, 2), (EventType.VIEW, EventType.VIEW))
        weights = model.context_weights(context)
        indptr = np.array([0, 2, 4], dtype=np.int64)
        rows = np.array([1, 2, 1, 2], dtype=np.int64)
        model.sgd_step_batch(
            (indptr, rows, np.concatenate([weights, weights])),
            np.array([5, 6]),
            np.array([30, 31]),
        )
        assert not np.array_equal(model.taxonomy_embeddings, before)

    def test_empty_context_batch_still_updates_items(
        self, small_dataset, default_params
    ):
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        before = model.item_bias.copy()
        empty = (np.array([0, 0], dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0))
        model.sgd_step_batch(empty, np.array([1]), np.array([2]))
        assert model.item_bias[1] != before[1]

    def test_duplicate_rows_in_one_batch_sum(self, small_dataset):
        """Two triples sharing a positive must both contribute (np.add.at,
        not the last-write-wins of plain fancy indexing)."""
        params = BPRHyperParams(optimizer="sgd", seed=3, **_NO_FEATURE_PARAMS)
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        reference = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        context = UserContext((8,), (EventType.VIEW,))
        indptr = np.array([0, 1, 2], dtype=np.int64)
        rows = np.array([8, 8], dtype=np.int64)
        weights = np.concatenate(
            [model.context_weights(context), model.context_weights(context)]
        )
        model.sgd_step_batch(
            (indptr, rows, weights), np.array([4, 4]), np.array([10, 11])
        )
        # Mini-batch semantics: both gradients evaluated at pre-batch
        # parameters, then summed onto the shared rows.
        user = reference.user_embedding(context)
        expected = reference.item_embeddings[4].copy()
        for negative in (10, 11):
            phi_pos = reference.effective_item_vector(4)
            phi_neg = reference.effective_item_vector(negative)
            z = float(user @ (phi_pos - phi_neg)) + float(
                reference.item_bias[4] - reference.item_bias[negative]
            )
            e = 1.0 / (1.0 + np.exp(np.clip(z, -35.0, 35.0)))
            expected += params.learning_rate * (
                e * user - params.reg_item * reference.item_embeddings[4]
            )
        np.testing.assert_allclose(model.item_embeddings[4], expected, atol=1e-12)


class TestBatchedTrainer:
    def test_invalid_batch_size_rejected(self, small_dataset, fresh_model):
        with pytest.raises(ConfigError):
            BPRTrainer(fresh_model, small_dataset, batch_size=0)

    def test_compiled_examples_align_with_list(self, small_dataset, fresh_model):
        trainer = BPRTrainer(fresh_model, small_dataset, seed=3)
        compiled = trainer.compiled
        assert compiled.positives.size == trainer.n_examples
        for position, example in enumerate(trainer.examples):
            start, stop = compiled.indptr[position], compiled.indptr[position + 1]
            assert compiled.ctx_rows[start:stop].tolist() == list(
                example.context.item_indices
            )
            expected_negative = (
                example.negative if example.negative is not None else -1
            )
            assert compiled.negatives[position] == expected_negative
            np.testing.assert_allclose(
                compiled.ctx_weights[start:stop],
                fresh_model.context_weights(example.context),
            )

    def test_gather_builds_sub_csr(self, small_dataset, fresh_model):
        trainer = BPRTrainer(fresh_model, small_dataset, seed=3)
        batch = np.array([5, 0, 17])
        indptr, rows, weights = trainer.compiled.gather(batch)
        assert indptr[0] == 0 and indptr[-1] == rows.size == weights.size
        for offset, position in enumerate(batch):
            start, stop = indptr[offset], indptr[offset + 1]
            assert rows[start:stop].tolist() == list(
                trainer.examples[position].context.item_indices
            )

    @pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
    def test_batched_training_converges_like_scalar(self, small_dataset, optimizer):
        """Same seed, scalar vs batch-64: different trajectories (mini-batch
        semantics) but equivalent optimization behaviour."""

        def run(batch_size):
            model = BPRModel(
                small_dataset.catalog,
                small_dataset.taxonomy,
                BPRHyperParams(
                    n_factors=8, learning_rate=0.08, optimizer=optimizer, seed=1
                ),
            )
            trainer = BPRTrainer(
                model, small_dataset, max_epochs=4, batch_size=batch_size, seed=2
            )
            return trainer.train()

        scalar = run(1)
        batched = run(64)
        assert batched.epoch_losses[-1] < batched.epoch_losses[0]
        assert batched.final_loss == pytest.approx(scalar.final_loss, rel=0.25)

    def test_batched_training_deterministic(self, small_dataset, default_params):
        def run():
            model = BPRModel(
                small_dataset.catalog, small_dataset.taxonomy, default_params
            )
            BPRTrainer(
                model, small_dataset, max_epochs=2, batch_size=32, seed=77
            ).train()
            return model.item_embeddings.copy()

        assert np.array_equal(run(), run())

    def test_fixed_negatives_respected_in_batches(self, small_dataset, fresh_model):
        """Strength-constraint triples keep their compiled fixed negative."""
        trainer = BPRTrainer(
            fresh_model, small_dataset, strength_constraints=True, batch_size=16
        )
        fixed = trainer.compiled.negatives[trainer.compiled.negatives >= 0]
        assert fixed.size > 0
        explicit = [e.negative for e in trainer.examples if e.negative is not None]
        assert sorted(fixed.tolist()) == sorted(explicit)
