"""Tests for the CTR simulator used to reproduce Fig. 6."""

from __future__ import annotations

import pytest

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.model import CoOccurrenceModel
from repro.data.datasets import RetailerDataset
from repro.exceptions import DataError
from repro.models.popularity import PopularityModel
from repro.simulation.ctr import (
    ClickModel,
    ctr_by_popularity_bucket,
    simulate_ctr,
)


def build_cooc(dataset):
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    return CoOccurrenceModel(counts)


class TestClickModel:
    def test_monotone_in_affinity(self):
        model = ClickModel()
        probs = [model.click_probability(a) for a in (-2.0, 0.0, 2.0, 5.0)]
        assert probs == sorted(probs)

    def test_bounded_by_max_ctr(self):
        model = ClickModel(max_ctr=0.2)
        assert 0.0 < model.click_probability(100.0) <= 0.2
        assert model.click_probability(-100.0) >= 0.0


class TestSimulateCtr:
    def test_counts_accumulate(self, small_dataset):
        report = simulate_ctr(
            [small_dataset],
            {"cooc": build_cooc, "pop": lambda ds: PopularityModel(ds.n_items, ds.train)},
            requests_per_retailer=50,
            k=4,
            seed=1,
        )
        assert report.requests == 50
        for system in ("cooc", "pop"):
            shown = sum(report.impressions[system].values())
            clicked = sum(report.clicks[system].values())
            assert shown > 0
            assert 0 <= clicked <= shown
            assert 0.0 <= report.overall_ctr(system) <= 1.0

    def test_better_system_gets_higher_ctr(self, small_dataset, trained_model):
        """Ground-truth-aligned recommendations must out-click popularity."""
        report = simulate_ctr(
            [small_dataset],
            {
                "bpr": lambda ds: trained_model,
                "pop": lambda ds: PopularityModel(ds.n_items, ds.train),
            },
            requests_per_retailer=150,
            k=5,
            seed=2,
        )
        assert report.overall_ctr("bpr") > report.overall_ctr("pop")

    def test_requires_ground_truth(self, small_dataset):
        stripped = RetailerDataset(
            retailer_id=small_dataset.retailer_id,
            catalog=small_dataset.catalog,
            taxonomy=small_dataset.taxonomy,
            train=small_dataset.train,
            holdout=small_dataset.holdout,
            source=None,
        )
        with pytest.raises(DataError):
            simulate_ctr([stripped], {"cooc": build_cooc}, requests_per_retailer=5)

    def test_deterministic(self, small_dataset):
        def run():
            report = simulate_ctr(
                [small_dataset], {"cooc": build_cooc},
                requests_per_retailer=40, seed=9,
            )
            return report.overall_ctr("cooc")

        assert run() == run()


class TestBucketing:
    def test_buckets_cover_all_items(self, small_dataset):
        report = simulate_ctr(
            [small_dataset], {"cooc": build_cooc},
            requests_per_retailer=60, seed=3,
        )
        rows = ctr_by_popularity_bucket(report, "cooc")
        assert rows, "bucketing should produce at least one row"
        total_items = sum(items for _, _, _, items in rows)
        assert total_items == len(report.impressions["cooc"])
        for _, mean_pop, mean_ctr, _ in rows:
            assert mean_pop >= 0
            assert 0.0 <= mean_ctr <= 1.0

    def test_custom_edges(self, small_dataset):
        report = simulate_ctr(
            [small_dataset], {"cooc": build_cooc},
            requests_per_retailer=40, seed=4,
        )
        rows = ctr_by_popularity_bucket(
            report, "cooc", bucket_edges=[0.0, 1.0, float("inf")]
        )
        assert 1 <= len(rows) <= 2

    def test_empty_system(self, small_dataset):
        report = simulate_ctr(
            [small_dataset], {"cooc": build_cooc},
            requests_per_retailer=10, seed=5,
        )
        assert ctr_by_popularity_bucket(report, "ghost") == []
