"""Tests for the BPR model: embeddings, features, updates, state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.exceptions import ConfigError
from repro.models.bpr import BPRHyperParams, BPRModel


def ctx(*items, event=EventType.VIEW) -> UserContext:
    return UserContext(tuple(items), tuple(event for _ in items))


class TestHyperParams:
    def test_defaults_valid(self):
        BPRHyperParams()

    def test_invalid_factors(self):
        with pytest.raises(ConfigError):
            BPRHyperParams(n_factors=0)

    def test_invalid_decay(self):
        with pytest.raises(ConfigError):
            BPRHyperParams(context_decay=0.0)

    def test_invalid_optimizer(self):
        with pytest.raises(ConfigError):
            BPRHyperParams(optimizer="adam")

    def test_describe_flat(self):
        desc = BPRHyperParams().describe()
        assert desc["n_factors"] == 16
        assert "use_taxonomy" in desc


class TestConstruction:
    def test_parameter_shapes(self, small_dataset, default_params):
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        n, f = small_dataset.n_items, default_params.n_factors
        assert model.item_embeddings.shape == (n, f)
        assert model.context_embeddings.shape == (n, f)
        assert model.item_bias.shape == (n,)
        assert model.taxonomy_embeddings.shape[1] == f
        assert model.brand_embeddings.shape[1] == f

    def test_feature_switches_disable_tables(self, small_dataset):
        params = BPRHyperParams(
            n_factors=4, use_taxonomy=False, use_brand=False, use_price=False
        )
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        assert model.taxonomy_embeddings.shape[0] == 0
        assert model.brand_embeddings.shape[0] == 0
        assert model.price_embeddings.shape[0] == 0
        # Effective vector reduces to the raw item embedding.
        assert np.allclose(
            model.effective_item_vector(0), model.item_embeddings[0]
        )

    def test_deterministic_init(self, small_dataset, default_params):
        a = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        b = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        assert np.array_equal(a.item_embeddings, b.item_embeddings)

    def test_memory_bytes_positive_and_scales(self, small_dataset):
        small = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy, BPRHyperParams(n_factors=4)
        )
        large = BPRModel(
            small_dataset.catalog, small_dataset.taxonomy, BPRHyperParams(n_factors=64)
        )
        assert 0 < small.memory_bytes() < large.memory_bytes()


class TestEffectiveVectors:
    def test_taxonomy_contribution(self, small_dataset, default_params):
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        rows = model.item_ancestor_rows(0)
        assert rows.size > 0  # depth-3 taxonomy => non-root ancestors exist
        expected = model.item_embeddings[0] + model.taxonomy_embeddings[rows].sum(axis=0)
        item = small_dataset.catalog[0]
        if item.brand is not None:
            expected = expected + model.brand_embeddings[model._item_brand[0]]
        if item.price is not None and model._item_price_bucket[0] >= 0:
            expected = expected + model.price_embeddings[model._item_price_bucket[0]]
        assert np.allclose(model.effective_item_vector(0), expected)

    def test_effective_matrix_matches_per_item(self, trained_model):
        matrix = trained_model.effective_item_matrix()
        for item in (0, 3, 57, trained_model.n_items - 1):
            assert np.allclose(matrix[item], trained_model.effective_item_vector(item))

    def test_score_all_matches_score_items(self, trained_model):
        context = ctx(1, 5, 9)
        full = trained_model.score_all(context)
        some = trained_model.score_items(context, [0, 5, 11])
        assert np.allclose(full[[0, 5, 11]], some)


class TestContextEmbedding:
    def test_empty_context_is_zero(self, fresh_model):
        assert np.allclose(fresh_model.user_embedding(UserContext.empty()), 0.0)

    def test_weights_normalized(self, fresh_model):
        weights = fresh_model.context_weights(ctx(1, 2, 3))
        assert weights.sum() == pytest.approx(1.0)

    def test_recency_decay_orders_weights(self, fresh_model):
        weights = fresh_model.context_weights(ctx(1, 2, 3))
        assert weights[0] < weights[1] < weights[2]

    def test_event_weighting_boosts_strong_events(self, small_dataset):
        params = BPRHyperParams(n_factors=4, event_weighting=True, context_decay=1.0)
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        context = UserContext((1, 2), (EventType.VIEW, EventType.CART))
        weights = model.context_weights(context)
        assert weights[1] / weights[0] == pytest.approx(2.0)

    def test_event_weighting_off(self, small_dataset):
        params = BPRHyperParams(n_factors=4, event_weighting=False, context_decay=1.0)
        model = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        context = UserContext((1, 2), (EventType.VIEW, EventType.CONVERSION))
        weights = model.context_weights(context)
        assert weights[0] == pytest.approx(weights[1])

    def test_user_embedding_is_weighted_combination(self, fresh_model):
        """Eq. 1: u = sum_j w_j * vC_{I_j}."""
        context = ctx(4, 7)
        weights = fresh_model.context_weights(context)
        expected = (
            weights[0] * fresh_model.context_embeddings[4]
            + weights[1] * fresh_model.context_embeddings[7]
        )
        assert np.allclose(fresh_model.user_embedding(context), expected)


class TestSgdStep:
    def test_update_reduces_pairwise_loss(self, fresh_model):
        context, pos, neg = ctx(3, 8), 15, 40
        losses = [fresh_model.sgd_step(context, pos, neg) for _ in range(25)]
        assert losses[-1] < losses[0]

    def test_update_orders_positive_above_negative(self, fresh_model):
        context, pos, neg = ctx(2, 6), 20, 55
        for _ in range(40):
            fresh_model.sgd_step(context, pos, neg)
        scores = fresh_model.score_items(context, [pos, neg])
        assert scores[0] > scores[1]

    def test_loss_is_positive(self, fresh_model):
        assert fresh_model.sgd_step(ctx(1), 2, 3) > 0.0

    def test_untouched_rows_unchanged(self, fresh_model):
        before = fresh_model.item_embeddings.copy()
        fresh_model.sgd_step(ctx(0), 1, 2)
        touched = {1, 2}
        for item in range(10):
            if item in touched:
                continue
            assert np.array_equal(
                fresh_model.item_embeddings[item], before[item]
            ), f"item {item} moved without being in the triple"

    def test_empty_context_still_updates_items(self, fresh_model):
        before = fresh_model.item_bias.copy()
        fresh_model.sgd_step(UserContext.empty(), 1, 2)
        assert fresh_model.item_bias[1] != before[1]


class TestStateAndWarmStart:
    def test_state_roundtrip(self, small_dataset, default_params):
        a = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        for _ in range(5):
            a.sgd_step(ctx(1, 2), 3, 4)
        state = a.get_state()
        b = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        b.set_state(state)
        assert np.array_equal(a.item_embeddings, b.item_embeddings)
        assert np.array_equal(a.item_bias, b.item_bias)

    def test_state_is_a_copy(self, fresh_model):
        state = fresh_model.get_state()
        state["item"][0, 0] = 999.0
        assert fresh_model.item_embeddings[0, 0] != 999.0

    def test_set_state_shape_mismatch_rejected(self, small_dataset, fresh_model):
        params = BPRHyperParams(n_factors=fresh_model.params.n_factors + 1)
        other = BPRModel(small_dataset.catalog, small_dataset.taxonomy, params)
        with pytest.raises(ConfigError):
            fresh_model.set_state(other.get_state())

    def test_set_state_missing_key_rejected(self, fresh_model):
        state = fresh_model.get_state()
        del state["bias"]
        with pytest.raises(ConfigError):
            fresh_model.set_state(state)

    def test_warm_start_copies_rows(self, small_dataset, default_params):
        old = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        for _ in range(10):
            old.sgd_step(ctx(1, 2), 3, 4)
        fresh = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        copied = fresh.warm_start_from(old)
        assert copied == small_dataset.n_items
        assert np.array_equal(fresh.item_embeddings, old.item_embeddings)

    def test_warm_start_skips_mismatched_factor_count(
        self, small_dataset, default_params
    ):
        old = BPRModel(
            small_dataset.catalog,
            small_dataset.taxonomy,
            BPRHyperParams(n_factors=default_params.n_factors + 4),
        )
        fresh = BPRModel(small_dataset.catalog, small_dataset.taxonomy, default_params)
        before = fresh.item_embeddings.copy()
        fresh.warm_start_from(old)
        assert np.array_equal(fresh.item_embeddings, before)


class TestRecommenderInterface:
    def test_recommend_excludes_context(self, trained_model):
        context = ctx(10, 11)
        recs = trained_model.recommend(context, k=20)
        rec_items = {r.item_index for r in recs}
        assert 10 not in rec_items and 11 not in rec_items

    def test_recommend_sorted_desc(self, trained_model):
        recs = trained_model.recommend(ctx(4), k=10)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_recommend_respects_candidates(self, trained_model):
        pool = [1, 2, 3, 4, 5]
        recs = trained_model.recommend(ctx(50), k=3, candidates=pool)
        assert all(r.item_index in pool for r in recs)

    def test_rank_of_consistency(self, trained_model):
        """rank_of equals the position in the full score ordering."""
        context = ctx(7, 8)
        scores = trained_model.score_all(context)
        target = 33
        expected = int(np.sum(scores >= scores[target]))
        assert trained_model.rank_of(context, target) == expected

    def test_rank_of_missing_target_rejected(self, trained_model):
        with pytest.raises(ValueError):
            trained_model.rank_of(ctx(1), 5, candidates=[1, 2, 3])

    def test_score_items_empty_pool(self, trained_model):
        """Regression: an empty candidate pool must score to an empty
        array, not crash in np.stack."""
        scores = trained_model.score_items(ctx(1, 2), [])
        assert isinstance(scores, np.ndarray)
        assert scores.shape == (0,)
        assert scores.dtype == np.float64

    def test_recommend_with_fully_excluded_pool(self, trained_model):
        """All candidates in the context -> empty recommendation list."""
        assert trained_model.recommend(ctx(1, 2), candidates=[1, 2]) == []
