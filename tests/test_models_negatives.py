"""Tests for negative-sampling heuristics (paper section III-B3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.sessions import UserContext
from repro.data.events import EventType
from repro.exceptions import DataError
from repro.models.negatives import (
    AffinityNegativeSampler,
    CompositeNegativeSampler,
    CoOccurrenceExcludingSampler,
    TaxonomyAwareSampler,
    UniformNegativeSampler,
)


def ctx(*items) -> UserContext:
    return UserContext(tuple(items), tuple(EventType.VIEW for _ in items))


RNG = lambda: np.random.default_rng(123)


class TestUniform:
    def test_never_returns_positive(self):
        sampler = UniformNegativeSampler(10)
        rng = RNG()
        for _ in range(200):
            assert sampler.sample(ctx(), 4, rng) != 4

    def test_avoids_context_items(self):
        sampler = UniformNegativeSampler(5)
        rng = RNG()
        draws = {sampler.sample(ctx(0, 1, 2), 3, rng) for _ in range(100)}
        assert draws == {4}

    def test_degenerate_catalog_falls_back(self):
        """Everything except the positive is in the avoid set."""
        sampler = UniformNegativeSampler(3)
        rng = RNG()
        draws = {sampler.sample(ctx(0, 1, 2), 0, rng) for _ in range(50)}
        assert 0 not in draws
        assert draws <= {1, 2}

    def test_tiny_catalog_rejected(self):
        with pytest.raises(DataError):
            UniformNegativeSampler(1)


class TestTaxonomyAware:
    def test_respects_min_distance(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        sampler = TaxonomyAwareSampler(
            small_dataset.n_items, taxonomy, min_distance=2
        )
        rng = RNG()
        positive = 0
        far = 0
        for _ in range(100):
            negative = sampler.sample(ctx(), positive, rng)
            assert negative != positive
            if taxonomy.lca_distance(negative, positive) >= 2:
                far += 1
        # Rejection sampling should satisfy the constraint essentially always
        # on a deep-enough taxonomy.
        assert far >= 95

    def test_unsatisfiable_distance_falls_back_to_uniform(self, small_dataset):
        sampler = TaxonomyAwareSampler(
            small_dataset.n_items, small_dataset.taxonomy, min_distance=99
        )
        negative = sampler.sample(ctx(), 0, RNG())
        assert negative != 0


class TestCoOccurrenceExcluding:
    def test_never_samples_excluded(self):
        co_items = {3: {0, 1}}
        sampler = CoOccurrenceExcludingSampler(6, co_items)
        rng = RNG()
        for _ in range(100):
            negative = sampler.sample(ctx(), 3, rng)
            assert negative not in {0, 1, 3}

    def test_items_without_exclusions_unconstrained(self):
        sampler = CoOccurrenceExcludingSampler(6, {})
        rng = RNG()
        draws = {sampler.sample(ctx(), 0, rng) for _ in range(200)}
        assert draws == {1, 2, 3, 4, 5}


class TestAffinity:
    def test_picks_highest_scoring_candidate(self, trained_model):
        sampler = AffinityNegativeSampler(
            trained_model.n_items, trained_model, pool_size=8
        )
        rng = RNG()
        context = ctx(2, 5)
        # The adaptive sampler must return negatives that score at least as
        # high as a uniform draw on average.
        adaptive_scores, uniform_scores = [], []
        uniform = UniformNegativeSampler(trained_model.n_items)
        for _ in range(60):
            a = sampler.sample(context, 0, rng)
            u = uniform.sample(context, 0, rng)
            adaptive_scores.append(float(trained_model.score_items(context, [a])[0]))
            uniform_scores.append(float(trained_model.score_items(context, [u])[0]))
        assert np.mean(adaptive_scores) > np.mean(uniform_scores)

    def test_never_positive_or_seen(self, trained_model):
        sampler = AffinityNegativeSampler(trained_model.n_items, trained_model)
        rng = RNG()
        for _ in range(50):
            negative = sampler.sample(ctx(1, 2), 3, rng)
            assert negative not in {1, 2, 3}


class TestComposite:
    def test_all_constraints_hold(self, small_dataset, trained_model):
        taxonomy = small_dataset.taxonomy
        co_items = {0: {5, 6, 7}}
        sampler = CompositeNegativeSampler(
            small_dataset.n_items,
            taxonomy=taxonomy,
            co_items=co_items,
            model=trained_model,
            min_lca_distance=2,
        )
        rng = RNG()
        for _ in range(60):
            negative = sampler.sample(ctx(1), 0, rng)
            assert negative not in {0, 1}
            assert negative not in co_items[0]
            assert taxonomy.lca_distance(negative, 0) >= 2

    def test_works_without_optional_components(self, small_dataset):
        sampler = CompositeNegativeSampler(small_dataset.n_items)
        assert sampler.sample(ctx(), 0, RNG()) != 0
