#!/usr/bin/env python
"""Fleet observability: metrics, traces, and the sealed day snapshot.

Runs one day for a 3-retailer fleet with the observability layer turned
on (it is off — and provably free — by default), then walks through
what the layer produced:

* the **fleet rollup** — throughput, cost, and availability aggregated
  over every tenant,
* the **per-retailer attribution** — who consumed the fleet: epochs,
  SGD triples/s, inference items, chargeback cost,
* the **span trace** — every phase and MapReduce task timestamped by
  the simulated clock, so the trace is deterministic and diffable,
* the full **fleet snapshot JSON** (same document as
  ``python -m repro metrics`` and the day seal in the run journal).

Run:  python examples/fleet_observability.py
"""

from __future__ import annotations

import json

from repro import (
    GridSpec,
    MarketplaceSpec,
    MetricsRegistry,
    SigmundService,
    Tracer,
    TrainerSettings,
    build_cluster,
    build_fleet_snapshot,
    dataset_from_synthetic,
    generate_marketplace,
)


def main() -> None:
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=6),
        grid=GridSpec.small(),
        settings=TrainerSettings(
            max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
        ),
        metrics=MetricsRegistry(),
        tracer=Tracer(),
    )
    fleet = generate_marketplace(
        MarketplaceSpec(n_retailers=3, median_items=60, seed=11)
    )
    for retailer in fleet:
        service.onboard(dataset_from_synthetic(retailer))
    report = service.run_day()
    print(
        f"day {report.day}: sweep={report.sweep_kind} "
        f"configs={report.configs_trained} served={report.retailers_served}"
    )

    snapshot = build_fleet_snapshot(service)

    print("\nFleet rollup (one line per fact, aggregated over all tenants):")
    for key, value in sorted(snapshot["fleet"].items()):
        print(f"  {key:<32} {value:12.4f}")

    print("\nPer-retailer attribution (who consumes the fleet):")
    header = ("retailer", "epochs", "triples/s", "items", "cost")
    print(f"  {header[0]:<14} {header[1]:>8} {header[2]:>12} "
          f"{header[3]:>8} {header[4]:>10}")
    for rid, rollup in sorted(snapshot["retailers"].items()):
        print(
            f"  {rid:<14} {rollup['epochs']:8.0f} "
            f"{rollup['triples_per_second']:12.1f} "
            f"{rollup['inference_items']:8.0f} "
            f"{rollup['inference_cost'] + rollup['train_cost']:10.4f}"
        )

    print("\nSpan trace (simulated-clock timestamps — deterministic):")
    for depth, span in service.tracer.span_tree()[:20]:
        label = span.attrs.get("retailer") or span.attrs.get("cell") or ""
        print(
            f"  {'  ' * depth}{span.name:<{24 - 2 * depth}} "
            f"[{span.start:9.1f}s .. {span.end:9.1f}s] {label}"
        )
    remaining = len(service.tracer.spans) - 20
    if remaining > 0:
        print(f"  ... and {remaining} more spans")

    print("\nFull snapshot document (what `repro metrics` prints, and what")
    print("the run journal seals with the day):")
    print(json.dumps(snapshot["report"], indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
