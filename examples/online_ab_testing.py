#!/usr/bin/env python
"""Structured online experiments: should we ship the hybrid?

The paper (section V): "Offline metrics do not directly translate to
improvements in online metrics ... we relied on a series of carefully
structured online experiments to inform our design choices."

This example runs that decision process on simulated traffic:

1. offline: compare co-occurrence vs the hybrid on holdout MAP@10,
2. online: a 50/50 A/B experiment with consistent user assignment,
   CTR lift, and a two-proportion z-test,
3. the ship/no-ship call from the significance test.

Run:  python examples/online_ab_testing.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BPRHyperParams,
    BPRModel,
    BPRTrainer,
    CoOccurrenceCounts,
    CoOccurrenceModel,
    HoldoutEvaluator,
    HybridRecommender,
    MarketplaceSpec,
    dataset_from_synthetic,
    generate_marketplace,
)
from repro.simulation.experiments import ABExperiment


def build_cooccurrence(dataset):
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    return CoOccurrenceModel(counts)


def main() -> None:
    fleet = [
        dataset_from_synthetic(retailer)
        for retailer in generate_marketplace(
            MarketplaceSpec(
                n_retailers=4, median_items=120, sigma_items=0.7,
                users_per_item=0.6, events_per_user=9.0, seed=33,
            )
        )
    ]

    # Train one BPR model per retailer (in production this is the
    # grid-search winner from the registry).
    bpr_models = {}
    for dataset in fleet:
        model = BPRModel(
            dataset.catalog, dataset.taxonomy,
            BPRHyperParams(n_factors=16, learning_rate=0.08, seed=5),
        )
        BPRTrainer(model, dataset, max_epochs=6, seed=6).train()
        bpr_models[dataset.retailer_id] = model

    def build_hybrid(dataset):
        return HybridRecommender(
            bpr_models[dataset.retailer_id], build_cooccurrence(dataset)
        )

    # --- 1. offline comparison -------------------------------------------
    print("Offline holdout MAP@10 (fleet mean):")
    for name, builder in (("cooccurrence", build_cooccurrence),
                          ("hybrid", build_hybrid)):
        maps = [
            HoldoutEvaluator(ds).evaluate(builder(ds)).map_at_10 for ds in fleet
        ]
        print(f"  {name:<13} {np.mean(maps):.4f}")

    # --- 2. online A/B experiment ----------------------------------------
    experiment = ABExperiment("cooccurrence", "hybrid", traffic_split=0.5)
    result = experiment.run(
        fleet,
        {"cooccurrence": build_cooccurrence, "hybrid": build_hybrid},
        requests_per_retailer=400,
        k=6,
        seed=17,
    )
    print("\nOnline A/B experiment (users hashed 50/50):")
    for arm in (result.control, result.treatment):
        print(
            f"  {arm.name:<13} users={arm.users:<4} "
            f"impressions={arm.impressions:<6} ctr={arm.ctr:.4f}"
        )
    print(
        f"  lift {result.lift * 100:+.2f}%  z={result.z_score:.2f}  "
        f"p={result.p_value:.4f}"
    )

    # --- 3. the call -------------------------------------------------------
    if result.significant() and result.lift > 0:
        print("\nDecision: SHIP the hybrid (significant positive CTR lift).")
    elif result.lift > 0:
        print("\nDecision: keep experimenting (positive but not significant).")
    else:
        print("\nDecision: do not ship.")


if __name__ == "__main__":
    main()
