#!/usr/bin/env python
"""Cost planning on pre-emptible capacity (paper sections II-B, IV-B).

Answers the operator questions the paper's systems sections answer:

* How much cheaper are pre-emptible VMs once you account for restarts?
* How does the checkpoint interval trade lost work against overhead?
* How do Hogwild threads change the cost of one training job?

Everything runs on the simulated cluster, so the numbers are exact
expectations over the pre-emption model rather than anecdotes.

Run:  python examples/cluster_cost_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cost import ResourcePricing
from repro.cluster.execution import expected_cost_comparison, run_with_preemptions
from repro.cluster.machine import Priority, VMRequest
from repro.cluster.preemption import PreemptionModel


def main() -> None:
    pricing = ResourcePricing()
    preemption = PreemptionModel(preemptible_mean_uptime_hours=6.0)
    job_hours = 3.0
    work_seconds = job_hours * 3600.0

    # --- pre-emptible vs regular -----------------------------------------
    comparison = expected_cost_comparison(
        work_seconds,
        request_cpus=4,
        request_memory_gb=32,
        pricing=pricing,
        preemption_model=preemption,
        checkpoint_interval=300.0,
        trials=200,
        seed=1,
    )
    print(f"A {job_hours:.0f}h training job on 4 CPUs / 32 GB:")
    for priority in ("regular", "preemptible"):
        row = comparison[priority]
        print(
            f"  {priority:<12} mean cost {row['mean_cost']:.4f}  "
            f"mean wall {row['mean_wall_seconds'] / 3600:.2f}h"
        )
    print(
        f"  savings from pre-emptible capacity: "
        f"{comparison['savings_fraction'] * 100:.1f}% "
        f"(paper: 'nearly 70%')"
    )

    # --- checkpoint interval sweep ----------------------------------------
    print("\nCheckpoint interval sweep (same job, pre-emptible):")
    print(f"  {'interval':>10} {'overhead%':>10} {'lost h':>8} {'ckpts':>6}")
    rng = np.random.default_rng(2)
    for interval in (None, 60.0, 300.0, 1800.0, 7200.0):
        overheads, losts, ckpts = [], [], []
        for _ in range(100):
            trace = run_with_preemptions(
                work_seconds,
                preemption_model=preemption,
                checkpoint_interval=interval,
                seed=rng,
            )
            overheads.append(trace.overhead_ratio)
            losts.append(trace.lost_work_seconds / 3600)
            ckpts.append(trace.checkpoints_written)
        label = "none" if interval is None else f"{interval:.0f}s"
        print(
            f"  {label:>10} {np.mean(overheads) * 100:>9.1f}% "
            f"{np.mean(losts):>8.2f} {np.mean(ckpts):>6.1f}"
        )

    # --- thread count: memory is the fixed cost ----------------------------
    print("\nThreads vs cost for one model (32 GB resident either way):")
    print("  the paper's point: once the model's memory is allocated, extra")
    print("  CPUs for Hogwild threads amortize it (section IV-B2).")
    print(f"  {'threads':>8} {'wall h':>8} {'cost':>8}")
    single_thread_seconds = work_seconds
    for threads in (1, 2, 4, 8):
        speedup = 1.0 + (threads - 1) * 0.85
        duration = single_thread_seconds / speedup
        request = VMRequest(cpus=threads, memory_gb=32, priority=Priority.PREEMPTIBLE)
        cost = pricing.cost(request, duration)
        print(f"  {threads:>8} {duration / 3600:>8.2f} {cost:>8.4f}")


if __name__ == "__main__":
    main()
