#!/usr/bin/env python
"""Quickstart: train one retailer's recommender and serve recommendations.

This walks the core single-retailer path the Sigmund paper builds on:

1. generate a synthetic retailer (the stand-in for real logs),
2. split its interaction log leave-last-out,
3. train a BPR model with taxonomy/brand/price features,
4. evaluate MAP@10 against a popularity baseline,
5. produce recommendations for a live user context.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BPRHyperParams,
    BPRModel,
    BPRTrainer,
    HoldoutEvaluator,
    PopularityModel,
    RetailerSpec,
    dataset_from_synthetic,
    generate_retailer,
)
from repro.models.negatives import CompositeNegativeSampler


def main() -> None:
    # 1. A mid-sized synthetic retailer: ~400 items, brand/price attributes,
    #    a 3-level taxonomy, and an implicit-feedback log.
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="quickstart_shop",
            n_items=400,
            n_users=300,
            n_events=5000,
            seed=7,
        )
    )
    dataset = dataset_from_synthetic(retailer)
    print("Retailer summary:")
    for key, value in dataset.describe().items():
        print(f"  {key}: {value}")

    # 2/3. Train BPR with the paper's composite negative sampler.
    params = BPRHyperParams(n_factors=16, learning_rate=0.08, seed=1)
    model = BPRModel(dataset.catalog, dataset.taxonomy, params)
    sampler = CompositeNegativeSampler(
        dataset.n_items, taxonomy=dataset.taxonomy, model=model
    )
    trainer = BPRTrainer(model, dataset, sampler=sampler, max_epochs=8)
    report = trainer.train()
    print(
        f"\nTrained {report.epochs_run} epochs over {trainer.n_examples} "
        f"examples; loss {report.epoch_losses[0]:.3f} -> "
        f"{report.epoch_losses[-1]:.3f}"
    )

    # 4. Evaluate on the leave-last-out holdout.
    evaluator = HoldoutEvaluator(dataset)
    bpr_result = evaluator.evaluate(model)
    pop_result = evaluator.evaluate(
        PopularityModel(dataset.n_items, dataset.train)
    )
    print(f"\nMAP@10  BPR: {bpr_result.map_at_10:.4f}")
    print(f"MAP@10  popularity baseline: {pop_result.map_at_10:.4f}")

    # 5. Recommend for a real holdout user's context.
    example = dataset.holdout[0]
    print(f"\nUser {example.user_id} context (most recent last):")
    for event, item in zip(example.context.events, example.context.item_indices):
        entry = dataset.catalog[item]
        print(f"  {event!s:>10}: {entry.item_id} ({entry.category_id})")
    print("Top 5 recommendations:")
    for scored in model.recommend(example.context, k=5):
        entry = dataset.catalog[scored.item_index]
        print(
            f"  {entry.item_id:<28} score={scored.score:7.3f} "
            f"category={entry.category_id}"
        )
    held = dataset.catalog[example.held_out_item]
    rank = model.rank_of(example.context, example.held_out_item)
    print(f"\nActually-next item: {held.item_id} (ranked {rank}/{dataset.n_items})")


if __name__ == "__main__":
    main()
