#!/usr/bin/env python
"""The online serving tier: frontend, cache, fallback chain, traffic.

Walks the full request path the paper's architecture implies but never
spells out (section II-A):

1. **Load** precomputed per-item tables into the sharded, replicated,
   memory/flash-tiered `ServingCluster`, plus a popularity fallback
   table per retailer.
2. **Serve** power-law traffic from a million-user population through
   the `ServingFrontend` — LRU+TTL response cache, request coalescing,
   and per-request simulated latency accounting.
3. **Degrade** on purpose: a stale retailer, an unserved retailer, and
   a node failure mid-traffic — and watch the fallback chain
   (fresh -> stale -> popularity -> empty) keep every request answered.

Run:  python examples/online_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.obs import MetricsRegistry
from repro.serving import (
    PopularityFallback,
    ServingCluster,
    ServingFrontend,
    TrafficGenerator,
)
from repro.serving.traffic import synthetic_recommendation_table, unique_users

CATALOGS = {"megamart": 2000, "midmart": 600, "stale_shop": 400, "newcomer": 150}


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Batch-load the serving cluster (newcomer is not onboarded yet).
    # ------------------------------------------------------------------
    cluster = ServingCluster(n_nodes=6, n_shards=24, replication=2,
                             hot_fraction=0.1)
    fallback = PopularityFallback()
    for retailer_id, n_items in CATALOGS.items():
        fallback.load_view_counts(
            retailer_id, {i: float(n_items - i) for i in range(n_items)}
        )
        if retailer_id != "newcomer":
            cluster.load_batch(
                retailer_id,
                synthetic_recommendation_table(n_items, seed=1),
                version=1,
            )
    metrics = MetricsRegistry()
    frontend = ServingFrontend(cluster, fallback=fallback, metrics=metrics)
    for retailer_id in CATALOGS:
        frontend.expect_version(retailer_id, 1)
    frontend.expect_version("stale_shop", 2)  # today's publish failed

    # ------------------------------------------------------------------
    # 2. Replay Zipf traffic, cold then warm.
    # ------------------------------------------------------------------
    generator = TrafficGenerator(CATALOGS, n_users=1_000_000, qps=1500,
                                 seed=11)
    stream = generator.generate(3000)
    print(f"replaying {len(stream)} requests from "
          f"{unique_users(stream)} distinct visitors")
    for phase in ("cold", "warm"):
        hits_before = frontend.stats.cache_hits
        latencies = [
            frontend.request(r.retailer_id, r.context, k=10,
                             now_ms=r.timestamp_ms).latency_ms
            for r in stream
        ]
        print(f"  {phase}: p50={np.percentile(latencies, 50):.3f}ms "
              f"p99={np.percentile(latencies, 99):.3f}ms "
              f"hit_rate={(frontend.stats.cache_hits - hits_before) / len(stream):.2f}")

    # ------------------------------------------------------------------
    # 3. Kill a node mid-traffic; nothing user-visible breaks.
    # ------------------------------------------------------------------
    cluster.fail_node(0)
    survivors = [
        frontend.request(r.retailer_id, r.context, k=10, now_ms=r.timestamp_ms)
        for r in generator.generate(800)
    ]
    print(f"node 0 down: {len(survivors)} requests, "
          f"0 errors, p99={np.percentile([r.latency_ms for r in survivors], 99):.3f}ms")

    stats = frontend.stats
    print(f"stale serves (stale_shop kept serving v1): {stats.stale_serves}")
    print(f"fallback serves (newcomer, popularity list): {stats.fallbacks}")
    snapshot = metrics.snapshot()
    print(f"frontend_requests_total={snapshot.counter_total('frontend_requests_total'):.0f} "
          f"frontend_cache_hits_total={snapshot.counter_total('frontend_cache_hits_total'):.0f} "
          f"frontend_fallback_total={snapshot.counter_total('frontend_fallback_total'):.0f}")


if __name__ == "__main__":
    main()
