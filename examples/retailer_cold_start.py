#!/usr/bin/env python
"""Cold start: new users, cold items, and what the side features buy you.

The paper's hardest setting is sparsity: "a retailer may only know about
a small number of purchases for a given user".  This example demonstrates
the three mitigations Sigmund stacks:

1. **Context users** — a brand-new user (never seen in training) gets
   recommendations immediately from their first few actions, with no
   retraining (section III-B2).
2. **Taxonomy features** — a model with the hierarchical-additive
   taxonomy feature beats one without it on a sparse retailer
   (section III-B4).
3. **Taxonomy candidate fallback** — a cold item with zero interactions
   still receives candidates from its category neighbourhood
   (section III-D1).

Run:  python examples/retailer_cold_start.py
"""

from __future__ import annotations


from repro import (
    BPRHyperParams,
    BPRModel,
    BPRTrainer,
    HoldoutEvaluator,
    RetailerSpec,
    dataset_from_synthetic,
    generate_retailer,
)
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.candidates import CandidateSelector
from repro.data.events import EventType
from repro.data.sessions import UserContext


def train(dataset, use_taxonomy: bool):
    params = BPRHyperParams(
        n_factors=12,
        learning_rate=0.08,
        use_taxonomy=use_taxonomy,
        seed=11,
    )
    model = BPRModel(dataset.catalog, dataset.taxonomy, params)
    BPRTrainer(model, dataset, max_epochs=8, seed=5).train()
    return model


def main() -> None:
    # A sparse retailer: many items, few interactions.
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="sparse_shop",
            n_items=500,
            n_users=150,
            n_events=1600,
            seed=19,
        )
    )
    dataset = dataset_from_synthetic(retailer)
    events_per_item = dataset.n_train_interactions / dataset.n_items
    print(
        f"Sparse retailer: {dataset.n_items} items, "
        f"{dataset.n_train_interactions} interactions "
        f"({events_per_item:.1f} per item)"
    )

    # --- 2. taxonomy feature ablation on sparse data -------------------
    evaluator = HoldoutEvaluator(dataset)
    with_tax = evaluator.evaluate(train(dataset, use_taxonomy=True))
    without_tax = evaluator.evaluate(train(dataset, use_taxonomy=False))
    print("\nTaxonomy feature on sparse data:")
    print(f"  MAP@10 with taxonomy:    {with_tax.map_at_10:.4f}")
    print(f"  MAP@10 without taxonomy: {without_tax.map_at_10:.4f}")

    # --- 1. brand-new user, no retraining -------------------------------
    model = train(dataset, use_taxonomy=True)
    fresh_context = UserContext.empty()
    # The new user views two items from the best-observed category (a
    # realistic entry point: popular categories get the traffic).
    from collections import Counter

    category_hits = Counter(
        dataset.taxonomy.category_of(it.item_index) for it in dataset.train
    )
    category = category_hits.most_common(1)[0][0]
    peers = dataset.taxonomy.items_in(category)[:2]
    for item in peers:
        fresh_context = fresh_context.extended(item, EventType.VIEW, 25)
    print(f"\nBrand-new user views {len(peers)} items in {category!r}; top 5 recs:")
    in_category = 0
    for scored in model.recommend(fresh_context, k=5):
        rec_category = dataset.taxonomy.category_of(scored.item_index)
        nearby = dataset.taxonomy.lca_distance(scored.item_index, peers[0]) <= 2
        in_category += nearby
        print(
            f"  {dataset.catalog[scored.item_index].item_id:<26} "
            f"category={rec_category} (taxonomy-near: {nearby})"
        )
    print(f"  -> {in_category}/5 recommendations taxonomy-near the context")

    # --- 3. cold item candidates ----------------------------------------
    interacted = set(dataset.interacted_items())
    cold_items = [i for i in range(dataset.n_items) if i not in interacted]
    print(f"\nCold items (zero training interactions): {len(cold_items)}")
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    selector = CandidateSelector(
        taxonomy=dataset.taxonomy, counts=counts, catalog=dataset.catalog
    )
    if cold_items:
        cold = cold_items[0]
        candidates = selector.view_based(cold)
        print(
            f"  cold item {dataset.catalog[cold].item_id} still gets "
            f"{len(candidates)} candidates via its taxonomy neighbourhood"
        )


if __name__ == "__main__":
    main()
