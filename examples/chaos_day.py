#!/usr/bin/env python
"""A flash-sale chaos drill, end to end.

The paper's operational claim — thousands of recommendation problems
solved daily — only matters if the serving tier survives what retail
traffic actually does.  This example runs the ``flash_sale`` drill from
the scenario catalog: one retailer's traffic spikes ~30x for a day
against a deliberately small serving pool, twice —

1. **Unprotected** — no admission control, no circuit breakers, no
   deadline budgets.  The queue backlog compounds and p99 blows through
   the 25ms deadline.
2. **Protected** — a token-bucket admission controller sheds the
   overflow to the (precomputed, cheap) popularity fallback *before*
   the queue collapses, per-request deadline budgets truncate work that
   cannot finish in time, and every shed request still gets a page.

Both runs are byte-deterministic and judged by the same machine-checkable
acceptance checks the E27 bench and CI use, evaluated against sealed
per-day metric snapshots.

Run:  python examples/chaos_day.py
"""

from __future__ import annotations

from repro.scenarios import get_scenario, run_scenario


def show(result, label: str) -> None:
    print(f"\n--- {label} ---")
    for stats in result.day_stats:
        shed = stats.buckets["shed"]
        print(
            f"day {stats.day}: p99={stats.p99_ms:8.2f}ms "
            f"availability={stats.availability:.4f} "
            f"shed={shed:4d} "
            f"max_queue_wait={stats.max_queue_wait_ms:8.2f}ms"
        )
    verdict = result.verdict()
    for check in verdict["checks"]:
        flag = "PASS" if check["passed"] else "FAIL"
        print(f"  [{flag}] {check['name']}: {check['detail']}")
    print(f"verdict: {'PASS' if verdict['passed'] else 'FAIL'}")


def main() -> None:
    scenario = get_scenario("flash_sale")
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(
        f"{len(scenario.retailer_items)} retailers, "
        f"{scenario.requests_per_day} requests/day for {scenario.days} days, "
        f"{scenario.n_servers} compute servers, "
        f"deadline {scenario.deadline_ms:.0f}ms"
    )

    # Day 2 is the sale: traffic jumps to 8000 qps and the head retailer
    # takes a 30x share boost — far beyond what two servers can compute.
    unprotected = run_scenario(scenario, protected=False)
    show(unprotected, "unprotected: queue collapse")

    protected = run_scenario(scenario, protected=True)
    show(protected, "protected: shed early, stay under deadline")

    # The trade visible in one line: protection converts an unbounded
    # queue backlog into a bounded count of popularity-page serves.
    worst_unprotected = max(d.p99_ms for d in unprotected.day_stats)
    worst_protected = max(d.p99_ms for d in protected.day_stats)
    total_shed = sum(d.buckets["shed"] for d in protected.day_stats)
    print(
        f"\np99 {worst_unprotected:.1f}ms -> {worst_protected:.1f}ms "
        f"by shedding {total_shed} of "
        f"{sum(d.requests for d in protected.day_stats)} requests "
        f"to the popularity fallback (zero empty pages either way)"
    )


if __name__ == "__main__":
    main()
