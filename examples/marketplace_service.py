#!/usr/bin/env python
"""Multi-tenant service: thousands-of-problems-daily in miniature.

Reproduces the paper's operating loop on a small heterogeneous fleet:

* day 0 — full sweep: the whole hyper-parameter grid for every retailer,
* day 1+ — incremental sweeps: only each retailer's top-3 configs,
  warm-started from yesterday's parameters,
* a new retailer signs up mid-stream and gets its full grid inside the
  incremental sweep (paper section IV-A),
* offline inference materializes substitutes and accessories, batch-loads
  the serving stores, and live contexts are served from precomputed data.

Run:  python examples/marketplace_service.py
"""

from __future__ import annotations

from repro import (
    GridSpec,
    MarketplaceSpec,
    RetailerSpec,
    SigmundService,
    TrainerSettings,
    build_cluster,
    dataset_from_synthetic,
    generate_marketplace,
    generate_retailer,
)


def print_report(report) -> None:
    print(
        f"  day {report.day}: sweep={report.sweep_kind:<11} "
        f"configs={report.configs_trained:<4} served={report.retailers_served} "
        f"cost={report.total_cost:.4f} "
        f"preemptions={report.preemptions} alerts={report.alerts}"
    )


def main() -> None:
    service = SigmundService(
        build_cluster(n_cells=3, machines_per_cell=8),
        grid=GridSpec.small(),
        settings=TrainerSettings(
            max_epochs_full=4, max_epochs_incremental=2, sampler="uniform"
        ),
        top_k_incremental=3,
    )

    print("Onboarding a heterogeneous fleet (sizes vary by ~an order of magnitude):")
    fleet = generate_marketplace(
        MarketplaceSpec(
            n_retailers=5, median_items=80, sigma_items=0.9,
            users_per_item=0.6, events_per_user=10.0, seed=3,
        )
    )
    for retailer in fleet:
        service.onboard(dataset_from_synthetic(retailer))
        print(f"  {retailer.retailer_id}: {retailer.n_items} items")

    print("\nDaily runs:")
    print_report(service.run_day())  # day 0: full sweep
    print_report(service.run_day())  # day 1: incremental

    print("\nA new retailer signs up (gets its full grid inside day 2):")
    newcomer = generate_retailer(
        RetailerSpec(
            retailer_id="new_signup", n_items=60, n_users=40,
            n_events=500, taxonomy_depth=2, seed=55,
        )
    )
    service.onboard(dataset_from_synthetic(newcomer))
    print_report(service.run_day())  # day 2

    print("\nPer-retailer model quality (MAP@10 of the selected model):")
    for retailer_id in service.retailers:
        print(f"  {retailer_id:<16} {service.best_map(retailer_id):.4f}")

    summary = service.monitor.fleet_summary(day=2)
    print(
        f"\nFleet summary day 2: {summary['retailers']:.0f} retailers, "
        f"mean MAP {summary['mean_map']:.4f} "
        f"(p10 {summary['p10_map']:.4f}, p90 {summary['p90_map']:.4f})"
    )

    # Serve a live request for one retailer from the batch-loaded store.
    rid = service.retailers[0]
    dataset = service._datasets[rid]
    example = dataset.holdout[0]
    print(f"\nServing substitutes for a {rid} user from the precomputed store:")
    for rec in service.substitutes_server.recommend(rid, example.context, k=5):
        entry = dataset.catalog[rec.item_index]
        print(f"  {entry.item_id:<28} blended_score={rec.score:7.3f}")

    print(f"\nTotal simulated compute cost so far: {service.total_cost():.4f}")


if __name__ == "__main__":
    main()
