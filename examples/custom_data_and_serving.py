#!/usr/bin/env python
"""Bring your own data, serve from the distributed tier.

Shows the two production-facing edges of the library:

1. **CSV ingestion** — a retailer's catalog + event export become a
   training-ready dataset (`repro.data.loaders`), the path for running
   Sigmund on public datasets instead of the synthetic generator.
2. **Distributed serving** — recommendations are batch-loaded into the
   sharded, replicated, memory/flash-tiered serving cluster
   (`repro.serving.cluster`); we then kill a node mid-traffic and watch
   failover keep every lookup alive.

Run:  python examples/custom_data_and_serving.py
"""

from __future__ import annotations

import tempfile
import pathlib

from repro import BPRHyperParams, BPRModel, BPRTrainer, HoldoutEvaluator
from repro.data.loaders import dataset_from_files
from repro.serving.cluster import ServingCluster

CATALOG_CSV = """item_id,category,brand,price
phone_a,electronics/phones/android,nexus,499
phone_b,electronics/phones/android,nexus,399
phone_c,electronics/phones/apple,apple,999
case_a,electronics/accessories/cases,nexus,29
case_b,electronics/accessories/cases,generic,15
charger,electronics/accessories/chargers,generic,19
buds,electronics/accessories/audio,apple,129
couch,home/furniture/sofas,acme,899
lamp,home/furniture/lighting,acme,89
"""


def make_events() -> str:
    """A small but structured log: phone browsers buy accessories."""
    rows = ["user_id,item_id,event,timestamp"]
    t = 0.0
    sessions = [
        ("u1", ["phone_a", "phone_b", "phone_a", "case_a"]),
        ("u2", ["phone_c", "buds", "phone_c"]),
        ("u3", ["phone_a", "case_a", "charger", "case_b"]),
        ("u4", ["couch", "lamp", "couch"]),
        ("u5", ["phone_b", "phone_a", "case_a"]),
        ("u6", ["phone_a", "charger", "case_a", "buds"]),
        ("u7", ["couch", "lamp", "lamp"]),
        ("u8", ["phone_c", "buds", "case_b"]),
    ]
    for user, items in sessions:
        for position, item in enumerate(items):
            event = "purchase" if position == len(items) - 2 else "view"
            t += 1.0
            rows.append(f"{user},{item},{event},{t}")
    return "\n".join(rows) + "\n"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        catalog_path = pathlib.Path(tmp) / "catalog.csv"
        events_path = pathlib.Path(tmp) / "events.csv"
        catalog_path.write_text(CATALOG_CSV)
        events_path.write_text(make_events())

        # --- 1. CSV ingestion --------------------------------------------
        dataset = dataset_from_files(catalog_path, events_path, "my_shop")
        print("Loaded from CSV:")
        for key, value in dataset.describe().items():
            print(f"  {key}: {value}")

        model = BPRModel(
            dataset.catalog, dataset.taxonomy,
            BPRHyperParams(n_factors=8, learning_rate=0.1, seed=1),
        )
        BPRTrainer(model, dataset, max_epochs=20, seed=2).train()
        result = HoldoutEvaluator(dataset).evaluate(model)
        print(f"\nholdout MAP@10: {result.map_at_10:.4f} "
              f"({int(result.metrics['examples'])} examples)")

        # --- 2. materialize + serve from the distributed tier -------------
        batch = {}
        for item in range(dataset.n_items):
            from repro.data.events import EventType
            from repro.data.sessions import UserContext

            context = UserContext((item,), (EventType.VIEW,))
            batch[item] = model.recommend(context, k=3)
        cluster = ServingCluster(n_nodes=3, n_shards=8, replication=2,
                                 hot_fraction=0.3)
        cluster.load_batch("my_shop", batch, version=1)

        phone_a = dataset.catalog.by_id("my_shop:phone_a").index
        served = cluster.lookup("my_shop", phone_a)
        print(f"\nRecommendations for phone_a "
              f"(node {served.node_id}, {served.tier}, "
              f"{served.latency_ms:.1f}ms):")
        for rec in served.recommendations:
            print(f"  {dataset.catalog[rec.item_index].item_id:<10} "
                  f"score={rec.score:.3f}")

        # Kill the node that just served us; traffic must fail over.
        cluster.fail_node(served.node_id)
        after = cluster.lookup("my_shop", phone_a)
        print(f"\nnode {served.node_id} killed -> served by node "
              f"{after.node_id} at {after.latency_ms:.1f}ms "
              f"(failovers so far: {cluster.failovers})")
        survivors = sum(
            1 for item in range(dataset.n_items)
            if cluster.lookup("my_shop", item) is not None
        )
        print(f"all {survivors}/{dataset.n_items} items still servable")


if __name__ == "__main__":
    main()
