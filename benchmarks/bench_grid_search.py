"""E2 — the value of per-retailer grid search (paper section III-C).

"In our experiments, we found that a model with randomly chosen
hyper-parameters can be a hundred times worse (on hold-out metrics) than
the best model."

We run a grid that spans good and pathological corners (tiny learning
rates, crushing regularization, far too few factors) on one retailer and
report the best/median/worst holdout MAP@10 plus the best/worst ratio.
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from repro.core.config import ConfigRecord
from repro.core.grid import GridSpec, generate_configs
from repro.core.training import TrainerSettings, train_config
from repro.models.bpr import BPRHyperParams

SETTINGS = TrainerSettings(max_epochs_full=4, sampler="uniform")

#: A grid that includes the pathological corners a random draw can hit:
#: divergent learning rates, crushing regularization, starved factor
#: counts, and plain SGD next to Adagrad.
WIDE_GRID = GridSpec(
    n_factors=(2, 16, 64),
    learning_rates=(0.0005, 0.08, 5.0),
    reg_items=(0.01, 2.0),
    reg_contexts=(0.01,),
    use_taxonomy=(True,),
    use_brand=(True,),
    use_price=(True,),
    optimizers=("adagrad", "sgd"),
    max_configs=36,
)


def run_experiment(medium_dataset):
    configs = generate_configs(medium_dataset, WIDE_GRID)
    outputs = []
    for config in configs:
        _, output = train_config(config, medium_dataset, SETTINGS)
        outputs.append(output)
    return outputs


def test_grid_search_spread(medium_dataset, benchmark, capsys):
    outputs = run_experiment(medium_dataset)
    maps = sorted(o.map_at_10 for o in outputs)
    best, worst = maps[-1], maps[0]
    median = maps[len(maps) // 2]
    floor = max(worst, 1e-4)
    ratio = best / floor

    by_quality = sorted(outputs, key=lambda o: -o.map_at_10)
    lines = [
        f"{len(outputs)} configurations trained on one retailer "
        f"({medium_dataset.n_items} items)",
        fmt_row("rank", "map@10", "factors", "lr", "reg_item", "taxonomy",
                widths=[5, 8, 8, 8, 9, 9]),
    ]
    shown = by_quality[:3] + by_quality[-3:]
    for rank, output in enumerate(shown, start=1):
        params = output.config.params
        lines.append(
            fmt_row(
                "best" if output is by_quality[0] else
                ("worst" if output is by_quality[-1] else "."),
                output.map_at_10, params.n_factors, params.learning_rate,
                params.reg_item, str(params.use_taxonomy),
                widths=[5, 8, 8, 8, 9, 9],
            )
        )
    lines.append("")
    lines.append(
        f"best={best:.4f}  median={median:.4f}  worst={worst:.4f}  "
        f"best/worst ratio={ratio:.0f}x"
    )
    lines.append("paper claim: a random config 'can be a hundred times worse'")

    # Shape: bad corners must be at least an order of magnitude worse.
    assert ratio >= 10.0, f"grid spread too small: {ratio:.1f}x"
    assert best > median, "the grid's best should beat its median"
    emit("E2", "grid search: best vs random hyper-parameters", lines, capsys)

    # Timing kernel: one Train() call on the smallest config.
    quick = ConfigRecord(
        medium_dataset.retailer_id, 999,
        BPRHyperParams(n_factors=4, seed=0),
    )
    fast = TrainerSettings(max_epochs_full=1, sampler="uniform")
    benchmark(lambda: train_config(quick, medium_dataset, fast))
