"""E17 (extension) — structured online experiments (paper section V).

"Offline metrics do not directly translate to improvements in online
metrics ... we relied on a series of carefully structured online
experiments to inform our design choices."

We run the A/B machinery the way Sigmund's team would have: control =
the co-occurrence production system, treatment = the hybrid (co-occurrence
+ factorization), users consistently hashed into arms, CTR lift reported
with a two-proportion z-test.
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from benchmarks.conftest import build_cooccurrence, build_hybrid
from repro.simulation.experiments import ABExperiment


def test_hybrid_ab_experiment(trained_fleet, benchmark, capsys):
    datasets = [dataset for dataset, _ in trained_fleet.values()]
    models = {rid: model for rid, (_, model) in trained_fleet.items()}
    experiment = ABExperiment("cooccurrence", "hybrid", traffic_split=0.5)
    result = experiment.run(
        datasets,
        {
            "cooccurrence": build_cooccurrence,
            "hybrid": lambda ds: build_hybrid(ds, models[ds.retailer_id]),
        },
        requests_per_retailer=400,
        k=6,
        seed=17,
    )

    lines = [
        "control = co-occurrence, treatment = hybrid; users hashed 50/50:",
        fmt_row("arm", "users", "impressions", "clicks", "ctr",
                widths=[13, 6, 12, 7, 8]),
        fmt_row(result.control.name, result.control.users,
                result.control.impressions, result.control.clicks,
                result.control.ctr, widths=[13, 6, 12, 7, 8]),
        fmt_row(result.treatment.name, result.treatment.users,
                result.treatment.impressions, result.treatment.clicks,
                result.treatment.ctr, widths=[13, 6, 12, 7, 8]),
        "",
        f"CTR lift {result.lift * 100:+.1f}%  z={result.z_score:.2f}  "
        f"p={result.p_value:.4f}  "
        f"significant(5%)={result.significant()}",
    ]

    assert result.treatment.ctr >= result.control.ctr, (
        "the hybrid should not lose the online experiment"
    )
    assert result.control.impressions > 1000
    emit("E17", "A/B experiment: hybrid vs co-occurrence (extension)",
         lines, capsys)

    one = datasets[0]
    benchmark(
        lambda: experiment.run(
            [one],
            {
                "cooccurrence": build_cooccurrence,
                "hybrid": lambda ds: build_hybrid(ds, models[ds.retailer_id]),
            },
            requests_per_retailer=40,
            seed=1,
        )
    )
