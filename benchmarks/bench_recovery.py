"""E23 — crash recovery: lost work and recovery cost vs checkpoint policy.

The paper runs everything on pre-emptible capacity and bounds per-task
work loss with time-interval checkpoints (section IV-B3); this
experiment measures the *coordinator*-death story built on top of them:
a :class:`CrashPlan` kills the daily run at a parameterized point, and
``SigmundService.recover()`` resumes the open day from the run journal.

The matrix crosses checkpoint interval (every epoch / every ~2 epochs /
effectively never) with kill point (training epoch deep into the sweep,
an inference cell, the publish step) and reports:

* **lost epochs** — training epochs re-run during recovery beyond what
  the uninterrupted run needed (epochs are counted at the kill-point
  hook, so the number is exact, not estimated),
* **recovery wall time** as a fraction of a full day's run,
* **equivalence** — recovered store versions, total billed cost, and
  availability must match the uninterrupted run exactly; any divergence
  fails the benchmark.

Results land in ``benchmarks/results/e23.txt`` and ``BENCH_recovery.json``.
``E23_FAST=1`` runs one matrix cell and asserts the no-replay invariant
(completed retailers are not retrained) — the CI smoke mode.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.bench_util import emit, fmt_row
from repro import build_cluster
from repro.core.grid import GridSpec
from repro.core.recovery import CrashPlan
from repro.core.service import SigmundService
from repro.core.training import TrainerSettings
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.exceptions import SimulatedCrash

RESULTS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_recovery.json"

N_RETAILERS = 2
EPOCHS = 4

#: One config per retailer so the epoch accounting stays legible.
GRID = GridSpec(
    n_factors=(4,),
    learning_rates=(0.05,),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(False,),
    use_brand=(False,),
    use_price=(False,),
    max_configs=1,
)


def make_settings(checkpoint_interval: float) -> TrainerSettings:
    # convergence_tol=0 keeps every run at exactly EPOCHS epochs, so the
    # lost-work numbers are not blurred by early stopping.
    return TrainerSettings(
        max_epochs_full=EPOCHS,
        max_epochs_incremental=1,
        sampler="uniform",
        convergence_tol=0.0,
        checkpoint_interval_seconds=checkpoint_interval,
    )


def make_service(settings: TrainerSettings, crash_plan=None) -> SigmundService:
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=4),
        grid=GRID,
        settings=settings,
        crash_plan=crash_plan,
    )
    for i in range(N_RETAILERS):
        service.onboard(
            dataset_from_synthetic(
                generate_retailer(
                    RetailerSpec(
                        retailer_id=f"r{i}",
                        n_items=40,
                        n_users=25,
                        n_events=260,
                        taxonomy_depth=2,
                        taxonomy_fanout=3,
                        seed=100 + i,
                    )
                )
            )
        )
    return service


def epoch_seconds(service: SigmundService) -> float:
    """Simulated seconds per training epoch of the largest retailer."""
    settings = service.training.settings
    interactions = max(
        ds.n_train_interactions for ds in service._datasets.values()
    )
    return (
        interactions * settings.seconds_per_sgd_step / settings.thread_speedup()
    )


def epochs_run(plan: CrashPlan) -> int:
    """Exact count of executed training epochs (each epoch hits the hook)."""
    return sum(1 for stage, _ in plan.checked if stage == "train_epoch")


def snapshot(service: SigmundService) -> tuple:
    return (
        tuple(sorted(service.substitutes_store.versions().items())),
        tuple(sorted(service.accessories_store.versions().items())),
        round(service.total_cost(), 9),
        service.reports[-1].availability,
    )


def run_cell(interval_name: str, interval: float, kill: dict) -> dict:
    settings = make_settings(interval)

    # Uninterrupted reference: same settings, a hook-only CrashPlan so the
    # epoch counter sees identical instrumentation.
    baseline_plan = CrashPlan()
    baseline = make_service(settings, crash_plan=baseline_plan)
    t0 = time.perf_counter()
    baseline.run_day()
    run_seconds = time.perf_counter() - t0
    baseline_epochs = epochs_run(baseline_plan)

    crash_plan = CrashPlan().crash_at(
        kill["stage"], match=kill.get("match"), nth=kill.get("nth")
    )
    service = make_service(settings, crash_plan=crash_plan)
    try:
        service.run_day()
        crashed = False
    except SimulatedCrash:
        crashed = True
    t0 = time.perf_counter()
    if crashed:
        report = service.recover()
        assert report is not None
    recovery_seconds = time.perf_counter() - t0

    assert crashed, f"kill point {kill['name']} never fired"
    assert snapshot(service) == snapshot(baseline), (
        f"recovered run diverged from uninterrupted run "
        f"({interval_name}, {kill['name']})"
    )
    # No-replay invariant: exactly one journaled training task per
    # retailer (a replay would have raised inside the journal).
    assert service.journal.task_count(0, "train") == N_RETAILERS

    return {
        "interval": interval_name,
        "interval_seconds": interval,
        "kill_point": kill["name"],
        "lost_epochs": epochs_run(crash_plan) - baseline_epochs,
        "baseline_epochs": baseline_epochs,
        "recovery_seconds": recovery_seconds,
        "run_seconds": run_seconds,
        "recovery_fraction": recovery_seconds / max(run_seconds, 1e-9),
        "equivalent": True,
    }


def kill_points(per_epoch: float) -> list:
    del per_epoch  # kill points are epoch-indexed, not time-indexed
    return [
        {
            # Deep into the second retailer's training: the first
            # retailer is already journaled complete.
            "name": f"train@e{EPOCHS - 1}",
            "stage": "train_epoch",
            "match": lambda label: label.startswith("r1/")
            and label.endswith(f"@e{EPOCHS - 1}"),
        },
        {"name": "infer_cell", "stage": "infer_cell", "nth": 0},
        {"name": "publish", "stage": "publish", "nth": 0},
    ]


def test_recovery(capsys):
    fast = bool(os.environ.get("E23_FAST"))

    probe = make_service(make_settings(300.0))
    per_epoch = epoch_seconds(probe)
    intervals = [
        ("every-epoch", per_epoch * 0.5),
        ("2-epochs", per_epoch * 2.0),
        ("never", 1e9),
    ]
    kills = kill_points(per_epoch)
    if fast:
        intervals, kills = intervals[:1], kills[:1]

    rows = [
        run_cell(name, interval, kill)
        for name, interval in intervals
        for kill in kills
    ]

    widths = [12, 12, 11, 11, 12, 10]
    lines = [
        f"{N_RETAILERS} retailers x {EPOCHS} epochs; journaled daily run, "
        "crash + recover vs uninterrupted",
        "",
        fmt_row(
            "interval", "kill point", "lost ep.", "base ep.",
            "recover/run", "equiv",
            widths=widths,
        ),
    ]
    for row in rows:
        lines.append(
            fmt_row(
                row["interval"],
                row["kill_point"],
                row["lost_epochs"],
                row["baseline_epochs"],
                f"{row['recovery_fraction']:.2f}x",
                "yes" if row["equivalent"] else "NO",
                widths=widths,
            )
        )
    emit("E23", "crash recovery: lost work vs checkpoint interval", lines, capsys)

    by_cell = {(row["interval"], row["kill_point"]) for row in rows}
    assert len(by_cell) == len(rows)
    train_kill = f"train@e{EPOCHS - 1}"
    lost = {
        row["interval"]: row["lost_epochs"]
        for row in rows
        if row["kill_point"] == train_kill
    }
    if fast:
        # CI smoke: recovery re-ran at most the work since the last
        # checkpoint, and completed retailers were never replayed (the
        # run_cell assertions above enforce the journal invariant).
        assert lost["every-epoch"] <= 2
        return

    # Checkpoints bound lost work: killing the last epoch with no usable
    # checkpoint re-runs (almost) the whole task; checkpointing every
    # epoch re-runs at most one epoch (plus the killed one).
    assert lost["every-epoch"] <= 2
    assert lost["never"] >= EPOCHS - 1
    assert lost["every-epoch"] <= lost["2-epochs"] <= lost["never"]
    # Non-training kill points lose no training epochs at all.
    for row in rows:
        if row["kill_point"] != train_kill:
            assert row["lost_epochs"] == 0, row

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "experiment": "E23",
                "source": "benchmarks/bench_recovery.py",
                "n_retailers": N_RETAILERS,
                "epochs": EPOCHS,
                "cells": rows,
            },
            indent=2,
        )
        + "\n"
    )
