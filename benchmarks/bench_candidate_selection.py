"""E9 — candidate selection: the LCA-k trade-off (paper section III-D1).

"Using a small value of k keeps the recommendations precise, but will
decrease coverage for tail items.  On the other hand, using a large value
of k provides a larger coverage at the risk of quality.  Empirically we
found that setting k = 2 provides a good trade-off" (view-based), and
"expanding with lca1 provides the best recommendations" (purchase-based,
after removing substitutes).

Measured: for each holdout example we treat the context's most recent
item as the query, and check (a) whether the actually-next item is inside
the candidate set (candidate recall), (b) the candidate set size (cost),
and (c) recall per thousand candidates (precision-of-effort) across k.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.candidates import CandidateSelector, RepurchaseDetector


def build_selector(dataset, max_candidates=1000):
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    return CandidateSelector(
        taxonomy=dataset.taxonomy,
        counts=counts,
        catalog=dataset.catalog,
        repurchase=RepurchaseDetector(dataset.taxonomy, dataset.train),
        max_candidates=max_candidates,
    )


def recall_and_size(dataset, selector, k):
    hits, sizes = 0, []
    for example in dataset.holdout:
        if len(example.context) == 0:
            continue
        query = example.context.most_recent_item
        candidates = selector.view_based(query, lca_k=k)
        sizes.append(len(candidates))
        if example.held_out_item in candidates:
            hits += 1
    total = len(dataset.holdout)
    return hits / total, float(np.mean(sizes))


def test_lca_k_tradeoff(fleet, benchmark, capsys):
    lines = [
        "view-based candidates: recall of the actually-next item vs pool",
        "size, fleet-averaged per expansion depth k:",
        fmt_row("k", "recall", "mean pool", "recall/1k cands",
                widths=[4, 8, 10, 16]),
    ]
    by_k = {}
    for k in (1, 2, 3):
        recalls, sizes = [], []
        for dataset in fleet:
            selector = build_selector(dataset)
            recall, size = recall_and_size(dataset, selector, k)
            recalls.append(recall)
            sizes.append(size)
        mean_recall = float(np.mean(recalls))
        mean_size = float(np.mean(sizes))
        by_k[k] = (mean_recall, mean_size)
        lines.append(
            fmt_row(k, mean_recall, f"{mean_size:.0f}",
                    mean_recall / max(mean_size, 1) * 1000,
                    widths=[4, 8, 10, 16])
        )

    lines.append("")
    lines.append(
        "k=1 is precise but misses next items; k=3 scores nearly the whole"
    )
    lines.append(
        "catalog; k=2 keeps most of k=3's recall at a fraction of the pool"
    )

    # Shape assertions: recall grows with k; pool size grows with k;
    # k=2 retains most of k=3's recall with a meaningfully smaller pool.
    assert by_k[1][0] <= by_k[2][0] <= by_k[3][0]
    assert by_k[1][1] <= by_k[2][1] <= by_k[3][1]
    assert by_k[2][0] >= 0.8 * by_k[3][0]
    assert by_k[2][1] <= 0.9 * by_k[3][1]
    emit("E9", "LCA-k candidate selection trade-off (k=2 sweet spot)",
         lines, capsys)

    dataset = fleet[0]
    selector = build_selector(dataset)
    benchmark(lambda: selector.view_based(0, lca_k=2))
