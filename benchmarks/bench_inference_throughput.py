"""E22 — batched offline inference & evaluation vs the per-item loops.

The daily loop's inference cost is dominated by Python overhead: two
scoring calls per item (view + purchase surface), each re-deriving the
candidate pool and paying a full interpreter round trip for one gemv.
The batched path computes one ``U @ V_eff.T`` score matrix per block of
items, resolves candidates through the selector's subtree/union memos,
and shares the exact per-row top-k with the per-item path.

Measured here, per synthetic retailer scale:

1. items/s — per-item ``recommend`` loop vs ``recommend_batch`` over
   128-item blocks, both surfaces per item (the acceptance bar is >= 5x
   on the medium retailer),
2. holdout examples/s — ``HoldoutEvaluator`` with ``batched=False`` vs
   ``batched=True`` (exact or sampled, whichever the scale selects),
3. parity — batched results must equal the per-item reference
   item-for-item before any timing counts.

Results land in ``benchmarks/results/e22.txt`` and ``BENCH_inference.json``
(committed, so the perf trajectory has data points).  ``E22_FAST=1``
shrinks the run to one small retailer and only asserts the batched path
is not slower — the CI smoke mode.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.core.candidates import CandidateSelector, RepurchaseDetector
from repro.data.datasets import dataset_from_synthetic
from repro.data.events import EventType
from repro.data.generator import RetailerSpec, generate_retailer
from repro.data.sessions import UserContext
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer

#: (n_items, n_users, n_events) per scale.  "medium" carries the >= 5x
#: acceptance bar: the paper's mid-sized merchants have catalogs in the
#: thousands, which is where per-item Python overhead dominates.
SCALES = {
    "small": (1200, 400, 12_000),
    "medium": (5000, 1200, 50_000),
    "large": (8000, 1800, 80_000),
}
FAST_SCALE = ("fast", (250, 120, 3_000))
BLOCK = 128
TOP_K = 10
#: Timed laps per path; the fastest counts (standard best-of-N to keep
#: scheduler noise out of the committed numbers).
LAPS = 3


def _best_lap(fn, laps=LAPS):
    fn()  # warm lap: selector memos, numpy buffers, BLAS threads
    best = float("inf")
    for _ in range(laps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best

RESULTS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_inference.json"


def _build(n_items, n_users, n_events):
    dataset = dataset_from_synthetic(
        generate_retailer(
            RetailerSpec(
                retailer_id=f"bench_e22_{n_items}",
                n_items=n_items,
                n_users=n_users,
                n_events=n_events,
                seed=13,
            )
        )
    )
    model = BPRModel(
        dataset.catalog, dataset.taxonomy, BPRHyperParams(n_factors=16, seed=3)
    )
    BPRTrainer(model, dataset, max_epochs=2, batch_size=64, seed=7).train()
    model.effective_item_matrix()  # prime the gemm cache outside timing
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    selector = CandidateSelector(
        dataset.taxonomy,
        counts,
        dataset.catalog,
        repurchase=RepurchaseDetector(dataset.taxonomy, dataset.train),
    )
    return dataset, model, selector


def _check_parity(model, selector, contexts, items):
    """Batched output must equal the per-item reference before timing."""
    view_lists = selector.batch_view_based(items)
    buy_lists = selector.batch_purchase_based(items)
    batched = model.recommend_batch(contexts, view_lists, k=TOP_K)
    stride = max(1, len(items) // 50)
    for i in items[::stride]:
        assert view_lists[i].tolist() == selector.view_based(i)
        assert buy_lists[i].tolist() == selector.purchase_based(i)
        reference = model.recommend(
            contexts[i], k=TOP_K, candidates=selector.view_based(i)
        )
        assert [s.item_index for s in batched[i]] == [
            s.item_index for s in reference
        ]
        assert np.allclose(
            [s.score for s in batched[i]], [s.score for s in reference]
        )


def _inference_rates(model, selector, n_items):
    items = list(range(n_items))
    contexts = [UserContext((i,), (EventType.VIEW,)) for i in items]
    _check_parity(model, selector, contexts, items)

    def per_item():
        for i in items:
            model.recommend(contexts[i], k=TOP_K, candidates=selector.view_based(i))
            model.recommend(
                contexts[i], k=TOP_K, candidates=selector.purchase_based(i)
            )

    def batched():
        for start in range(0, n_items, BLOCK):
            block = items[start : start + BLOCK]
            ctx = contexts[start : start + BLOCK]
            model.recommend_batch(ctx, selector.batch_view_based(block), k=TOP_K)
            model.recommend_batch(
                ctx, selector.batch_purchase_based(block), k=TOP_K
            )

    return n_items / _best_lap(per_item), n_items / _best_lap(batched)


def _evaluation_rates(dataset, model):
    loop = HoldoutEvaluator(dataset, batched=False)
    batched = HoldoutEvaluator(dataset, batched=True)
    result_loop = loop.evaluate(model)
    result_batched = batched.evaluate(model)
    assert result_batched.ranks == result_loop.ranks, "evaluator parity broke"
    examples = len(result_loop.ranks)
    return (
        examples / _best_lap(lambda: loop.evaluate(model)),
        examples / _best_lap(lambda: batched.evaluate(model)),
        "sampled" if result_loop.sampled else "exact",
    )


def _measure(name, spec):
    n_items, n_users, n_events = spec
    dataset, model, selector = _build(n_items, n_users, n_events)
    item_rate, batch_rate = _inference_rates(model, selector, n_items)
    eval_loop, eval_batch, eval_mode = _evaluation_rates(dataset, model)
    return {
        "scale": name,
        "n_items": n_items,
        "per_item_items_per_s": round(item_rate, 1),
        "batched_items_per_s": round(batch_rate, 1),
        "inference_speedup": round(batch_rate / item_rate, 2),
        "eval_mode": eval_mode,
        "loop_examples_per_s": round(eval_loop, 1),
        "batched_examples_per_s": round(eval_batch, 1),
        "eval_speedup": round(eval_batch / eval_loop, 2),
    }


def test_inference_throughput(capsys):
    fast = bool(os.environ.get("E22_FAST"))
    scales = dict([FAST_SCALE]) if fast else SCALES
    rows = [_measure(name, spec) for name, spec in scales.items()]

    widths = [8, 7, 11, 11, 9, 8, 10, 10, 9]
    lines = [
        "items/s: two surfaces (view + purchase) per item, k=10",
        "",
        fmt_row(
            "scale", "items", "item/s", "batch/s", "speedup",
            "eval", "loop ex/s", "batch ex/s", "speedup",
            widths=widths,
        ),
    ]
    for row in rows:
        lines.append(
            fmt_row(
                row["scale"],
                row["n_items"],
                f"{row['per_item_items_per_s']:,.0f}",
                f"{row['batched_items_per_s']:,.0f}",
                f"{row['inference_speedup']:.2f}x",
                row["eval_mode"],
                f"{row['loop_examples_per_s']:,.0f}",
                f"{row['batched_examples_per_s']:,.0f}",
                f"{row['eval_speedup']:.2f}x",
                widths=widths,
            )
        )
    emit("E22", "batched inference & evaluation throughput", lines, capsys)

    if fast:
        # CI smoke: batched must never be slower than per-item, even on a
        # retailer small enough that BLAS has little to amortize.
        for row in rows:
            assert row["inference_speedup"] >= 1.0, row
            assert row["eval_speedup"] >= 1.0, row
        return

    by_scale = {row["scale"]: row for row in rows}
    assert by_scale["medium"]["inference_speedup"] >= 5.0, by_scale["medium"]
    for row in rows:
        assert row["eval_speedup"] >= 1.0, row

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "experiment": "E22",
                "source": "benchmarks/bench_inference_throughput.py",
                "block_size": BLOCK,
                "k": TOP_K,
                "scales": rows,
            },
            indent=2,
        )
        + "\n"
    )
