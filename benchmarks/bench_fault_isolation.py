"""E21 — fleet availability under injected per-retailer failures.

The paper's operational pitch is that Sigmund solves *thousands* of
recommendation problems daily — which only works if one tenant's bad day
cannot take the fleet down.  This experiment injects deterministic
training faults (via :class:`FaultPlan`) into a growing fraction of the
fleet from day 1 onward and measures what the serving tier sees: how
many retailers serve fresh tables, how many degrade to yesterday's
(stale), and how many are unserved.

The headline: with per-task failure isolation, availability stays 1.0 at
every failure rate — failed retailers serve stale tables instead of
erroring — where the pre-isolation runtime aborted the whole daily sweep
on the first bad record.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import emit, fmt_row
from repro import FaultPlan, GridSpec, SigmundService, TrainerSettings, build_cluster
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import MarketplaceSpec, generate_marketplace

SETTINGS = TrainerSettings(
    max_epochs_full=2, max_epochs_incremental=1, sampler="uniform"
)

GRID = GridSpec(
    n_factors=(8,),
    learning_rates=(0.05, 0.1),
    reg_items=(0.01,),
    reg_contexts=(0.01,),
    use_taxonomy=(False,),
    use_brand=(False,),
    use_price=(False,),
    max_configs=2,
)

N_RETAILERS = 6
N_DAYS = 3


def build_service(fault_plan=None) -> SigmundService:
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=6),
        grid=GRID,
        settings=SETTINGS,
        top_k_incremental=2,
        fault_plan=fault_plan,
    )
    fleet = generate_marketplace(
        MarketplaceSpec(
            n_retailers=N_RETAILERS, median_items=50, sigma_items=0.6,
            users_per_item=0.6, events_per_user=8.0, seed=55,
        )
    )
    for retailer in fleet:
        service.onboard(dataset_from_synthetic(retailer))
    return service


def failing_plan(failing, from_day):
    """Fail every training config of the given retailers from a day on."""
    return FaultPlan().fail_mapper(
        lambda r: getattr(r, "retailer_id", None) in failing
        and getattr(r, "day", 0) >= from_day
    )


def run_scenario(n_failing: int, from_day: int = 1):
    probe = build_service()
    failing = set(probe.retailers[:n_failing])
    service = build_service(failing_plan(failing, from_day))
    reports = [service.run_day() for _ in range(N_DAYS)]
    freshness = service.substitutes_store.freshness(service.retailers, N_DAYS)
    counts = {
        state: sum(1 for s in freshness.values() if s == state)
        for state in ("fresh", "stale", "unserved")
    }
    return service, reports, counts


def test_fleet_availability_under_failures(benchmark, capsys):
    lines = [
        f"{N_RETAILERS} retailers, {N_DAYS} days; injected training faults "
        "from day 1 on:",
        fmt_row("failing", "fresh", "stale", "unserved", "avail", "cfg_failed",
                "alerts", widths=[8, 6, 6, 9, 7, 11, 7]),
    ]
    worst = None
    for n_failing in (0, 2, 4):
        service, reports, counts = run_scenario(n_failing)
        last = reports[-1]
        lines.append(
            fmt_row(
                f"{n_failing}/{N_RETAILERS}", counts["fresh"], counts["stale"],
                counts["unserved"], f"{last.availability:.2f}",
                sum(r.configs_failed for r in reports),
                sum(r.alerts for r in reports),
                widths=[8, 6, 6, 9, 7, 11, 7],
            )
        )
        # Day 0 built everyone a table, so failures degrade to stale
        # serving — never to an unserved retailer.
        assert counts["unserved"] == 0
        assert counts["stale"] == n_failing
        assert counts["fresh"] == N_RETAILERS - n_failing
        assert last.availability == 1.0
        assert last.retailers_served + last.retailers_stale == N_RETAILERS
        worst = service

    # Day-0 failures are the one case a retailer goes unserved: it never
    # had a table to fall back on.  The day still completes for the rest.
    service, reports, counts = run_scenario(2, from_day=0)
    lines.append("")
    lines.append(
        f"day-0 failures (2/{N_RETAILERS}): {counts['fresh']} fresh, "
        f"{counts['unserved']} unserved, availability "
        f"{reports[-1].availability:.2f}"
    )
    assert counts["unserved"] == 2
    assert reports[-1].availability == pytest.approx(
        (N_RETAILERS - 2) / N_RETAILERS
    )

    emit("E21", "fleet availability under injected failures", lines, capsys)

    # Timing kernel: one degraded day (4/6 retailers failing).
    benchmark(lambda: worst.run_day())
