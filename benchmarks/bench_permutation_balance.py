"""E7 — random permutation balances training load (paper section IV-B1).

"The input config records are randomly permuted before being written so
that training tasks are randomly divided across different MapReduces.  We
also rely on this randomization strategy to balance the work within a
MapReduce job.  Workers assigned small retailers process more training
tasks, and those with larger retailers process fewer."

We build a realistic skewed sweep (per-config cost proportional to the
retailer's interaction count), split it contiguously-by-retailer vs
randomly permuted, run both through the MapReduce runtime, and compare
worker load imbalance and makespan.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.cluster.preemption import PreemptionModel
from repro.mapreduce.runtime import MapReduceJob, MapReduceRuntime
from repro.mapreduce.splits import contiguous_splits_by_key, random_permutation_splits

#: (retailer, interactions) with a heavy tail, as real fleets have.
FLEET_SIZES = [
    ("r_huge", 200_000),
    ("r_big", 60_000),
    ("r_mid1", 9_000),
    ("r_mid2", 7_000),
] + [(f"r_small{i}", 800 + 37 * i) for i in range(28)]

CONFIGS_PER_RETAILER = 3
N_WORKERS = 8
SECONDS_PER_INTERACTION = 1e-3


def build_records():
    return [
        (retailer, interactions)
        for retailer, interactions in FLEET_SIZES
        for _ in range(CONFIGS_PER_RETAILER)
    ]


def run_split(records, splits, seed):
    job = MapReduceJob(
        name="sweep",
        mapper=lambda record: [(record[0], 1)],
        n_workers=N_WORKERS,
        record_cost_fn=lambda record: record[1] * SECONDS_PER_INTERACTION,
        task_startup_seconds=1.0,
    )
    runtime = MapReduceRuntime(
        preemption_model=PreemptionModel(preemptible_mean_uptime_hours=1e6),
        seed=seed,
    )
    _, stats = runtime.run(job, splits)
    return stats


def test_permutation_load_balance(benchmark, capsys):
    records = build_records()
    n_splits = N_WORKERS * 4  # a few tasks per worker, like production

    contiguous = contiguous_splits_by_key(records, lambda r: r[0], n_splits)
    contiguous_stats = run_split(records, contiguous, seed=1)

    imbalances, makespans = [], []
    for seed in range(5):
        permuted = random_permutation_splits(records, n_splits, seed=seed)
        stats = run_split(records, permuted, seed=10 + seed)
        imbalances.append(stats.load_imbalance)
        makespans.append(stats.makespan_seconds)

    lines = [
        f"{len(records)} config records, {N_WORKERS} workers, "
        f"{n_splits} input splits; cost ∝ retailer interactions "
        f"(max/min = {FLEET_SIZES[0][1] // 800}x)",
        fmt_row("strategy", "makespan(s)", "imbalance",
                widths=[24, 12, 10]),
        fmt_row("contiguous by retailer", f"{contiguous_stats.makespan_seconds:.0f}",
                contiguous_stats.load_imbalance, widths=[24, 12, 10]),
        fmt_row("random permutation", f"{float(np.mean(makespans)):.0f}",
                float(np.mean(imbalances)), widths=[24, 12, 10]),
        "",
        f"permutation cuts makespan by "
        f"{(1 - np.mean(makespans) / contiguous_stats.makespan_seconds) * 100:.0f}%",
    ]

    assert np.mean(imbalances) < contiguous_stats.load_imbalance
    assert np.mean(makespans) < contiguous_stats.makespan_seconds
    emit("E7", "random permutation balances sweep load", lines, capsys)

    benchmark(lambda: random_permutation_splits(records, n_splits, seed=3))
