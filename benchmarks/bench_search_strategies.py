"""E16 (extension) — grid vs random search vs successive halving (§III-C1).

The paper flags Vizier-style black-box optimization as the rebuild-it-
today alternative to its grid search.  This ablation compares, at a
matched epoch budget on one retailer: the paper's grid, random search
over a continuous space, and successive halving (adaptive budget).
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from repro.core.grid import GridSpec, generate_configs
from repro.core.search import SearchSpace, random_search, successive_halving
from repro.core.training import TrainerSettings, train_config

SETTINGS = TrainerSettings(
    max_epochs_full=3, max_epochs_incremental=3, convergence_tol=0.0,
    sampler="uniform",
)

SPACE = SearchSpace(
    factor_choices=(8, 16, 32),
    learning_rate_range=(0.01, 0.3),
    reg_item_range=(1e-3, 0.3),
    reg_context_range=(1e-3, 0.3),
    taxonomy_choices=(True, False),
    brand_choices=(True,),
    price_choices=(True,),
)

GRID = GridSpec(
    n_factors=(8, 32),
    learning_rates=(0.02, 0.1),
    reg_items=(0.01, 0.1),
    reg_contexts=(0.01,),
    use_taxonomy=(True, False),
    use_brand=(True,),
    use_price=(True,),
    max_configs=16,
)


def run_grid(dataset):
    outputs = []
    epochs = 0
    for config in generate_configs(dataset, GRID):
        _, output = train_config(config, dataset, SETTINGS)
        outputs.append(output)
        epochs += output.epochs_run
    best = max(outputs, key=lambda o: o.map_at_10)
    return best, epochs, len(outputs)


def test_search_strategy_ablation(medium_dataset, benchmark, capsys):
    grid_best, grid_epochs, grid_models = run_grid(medium_dataset)

    # 16 + 8 + 4 + 2 + 1 candidates x 1 epoch per rung = 31 epochs,
    # comfortably inside the grid's 16 x 3 = 48 epoch budget.
    halving = successive_halving(
        medium_dataset, SPACE, n_initial=16, eta=2, epochs_per_rung=1,
        settings=SETTINGS, seed=11,
    )
    # Random search gets the same epoch budget as halving.
    random_trials = max(1, halving.total_epochs // SETTINGS.max_epochs_full)
    random_outcome = random_search(
        medium_dataset, SPACE, n_trials=random_trials, settings=SETTINGS,
        seed=11,
    )

    lines = [
        "one retailer, matched training budgets:",
        fmt_row("strategy", "models", "epochs", "best map@10",
                widths=[20, 7, 7, 12]),
        fmt_row("grid (paper)", grid_models, grid_epochs,
                grid_best.map_at_10, widths=[20, 7, 7, 12]),
        fmt_row("random search", random_trials,
                random_outcome.total_epochs,
                random_outcome.best.map_at_10, widths=[20, 7, 7, 12]),
        fmt_row("successive halving", 16, halving.total_epochs,
                halving.best.map_at_10, widths=[20, 7, 7, 12]),
        "",
        "adaptive search explores 16 configs for the epoch budget random",
        "search spends on ~10 — the Vizier-style win the paper anticipates",
    ]

    # All three must find a competent model; halving must not trail the
    # same-budget alternatives by more than noise.
    floor = 0.75 * grid_best.map_at_10
    assert random_outcome.best.map_at_10 >= floor
    assert halving.best.map_at_10 >= floor
    assert halving.total_epochs <= grid_epochs, (
        "halving should fit within the grid's budget"
    )
    emit("E16", "grid vs random vs successive halving (extension)",
         lines, capsys)

    fast = TrainerSettings(max_epochs_full=1, sampler="uniform",
                           convergence_tol=0.0)
    benchmark(
        lambda: random_search(
            medium_dataset, SPACE, n_trials=1, settings=fast, seed=1
        )
    )
