"""E25 — process-parallel training fleet: throughput, parity, Hogwild.

The paper's Train() step is "a map-only job" over thousands of
per-retailer configs (section IV-B), with lock-free Hogwild threads
inside each task (IV-B2).  Earlier experiments *model* parallel speed
with ``TrainerSettings.thread_speedup()`` inside the simulated clock;
this experiment measures the real thing:

1. **fleet throughput** — the same sweep run through the serial
   reference pipeline and through ``ProcessFleetExecutor`` at 1/2/4
   workers, timed on the wall clock.  Outputs and published model
   states must be byte-identical at every worker count: worker
   placement must never move a random draw.
2. **shared-memory Hogwild** — ``SharedMemoryHogwild`` lanes updating
   one model lock-free through ``multiprocessing.shared_memory``, with
   *measured* wall-clock speedup reported next to the modelled
   ``thread_speedup()`` curve it replaces.

Absolute speedups are hardware-honest: the run records
``os.cpu_count()`` and only asserts scaling (>= 3x at 4 workers) when
at least 4 cores are actually available.  Parity is asserted always —
it must hold on any machine.

Results land in ``benchmarks/results/e25.txt`` and ``BENCH_fleet.json``.
``E25_FAST=1`` runs a 2-worker tiny sweep and asserts parity plus
(given >= 2 cores) throughput no worse than serial — the CI smoke mode.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro import build_cluster
from repro.core.config import ConfigRecord
from repro.core.registry import ModelRegistry
from repro.core.training import TrainerSettings, TrainingPipeline
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.fleet.executor import FleetTask, ProcessFleetExecutor
from repro.fleet.hogwild import SharedMemoryHogwild
from repro.models.bpr import BPRHyperParams, BPRModel

RESULTS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_fleet.json"

EPOCHS = 3
SETTINGS = TrainerSettings(
    max_epochs_full=EPOCHS,
    max_epochs_incremental=1,
    sampler="uniform",
    convergence_tol=0.0,  # fixed epoch budget: every run does equal work
)


def make_datasets(n_retailers: int, n_events: int) -> dict:
    datasets = {}
    for i in range(n_retailers):
        dataset = dataset_from_synthetic(
            generate_retailer(
                RetailerSpec(
                    retailer_id=f"r{i}",
                    n_items=60,
                    n_users=40,
                    n_events=n_events,
                    taxonomy_depth=2,
                    taxonomy_fanout=3,
                    seed=500 + i,
                )
            )
        )
        datasets[dataset.retailer_id] = dataset
    return datasets


def make_configs(datasets: dict, per_retailer: int) -> list:
    configs = []
    for retailer_id in sorted(datasets):
        for number in range(per_retailer):
            configs.append(
                ConfigRecord(
                    retailer_id,
                    number,
                    BPRHyperParams(
                        n_factors=6 + 2 * (number % 2),
                        learning_rate=0.05 + 0.02 * (number % 3),
                        seed=number,
                    ),
                )
            )
    return configs


def _warm(payload):
    """Trivial pre-warm task so pool spawn cost stays out of the timings."""
    return payload


def run_sweep(datasets, configs, executor=None):
    registry = ModelRegistry()
    pipeline = TrainingPipeline(
        build_cluster(n_cells=1, machines_per_cell=8),
        registry,
        settings=SETTINGS,
        executor=executor,
    )
    t0 = time.perf_counter()
    outputs, _ = pipeline.run(configs, datasets, day=0)
    seconds = time.perf_counter() - t0
    states = {
        output.config.key: registry.get(
            output.retailer_id, output.config.model_number
        ).model.get_state()
        for output in outputs
    }
    return outputs, states, seconds


def assert_sweeps_identical(reference, candidate, label):
    ref_outputs, ref_states, _ = reference
    got_outputs, got_states, _ = candidate
    assert got_outputs == ref_outputs, f"{label}: outputs diverged from serial"
    assert got_states.keys() == ref_states.keys()
    for key, ref_state in ref_states.items():
        for name, values in ref_state.items():
            assert np.array_equal(got_states[key][name], values), (
                f"{label}: model state {key}/{name} diverged from serial"
            )


def time_hogwild(dataset, lanes: int, max_epochs: int) -> float:
    model = BPRModel(
        dataset.catalog,
        dataset.taxonomy,
        BPRHyperParams(n_factors=8, learning_rate=0.08, seed=7),
    )
    trainer = SharedMemoryHogwild(
        model, dataset, n_processes=lanes, max_epochs=max_epochs, seed=7
    )
    t0 = time.perf_counter()
    report = trainer.train()
    seconds = time.perf_counter() - t0
    assert report.epochs_run == max_epochs
    return seconds


def test_training_fleet(capsys):
    fast = bool(os.environ.get("E25_FAST"))
    cores = os.cpu_count() or 1

    if fast:
        datasets = make_datasets(n_retailers=2, n_events=160)
        configs = make_configs(datasets, per_retailer=2)
        worker_counts = [2]
    else:
        datasets = make_datasets(n_retailers=3, n_events=320)
        configs = make_configs(datasets, per_retailer=4)
        worker_counts = [1, 2, 4]

    serial = run_sweep(datasets, configs)
    serial_seconds = serial[2]

    fleet_rows = []
    for n_workers in worker_counts:
        with ProcessFleetExecutor(n_workers=n_workers) as executor:
            executor.run_tasks(
                [FleetTask(str(i), _warm, i) for i in range(n_workers)]
            )
            result = run_sweep(datasets, configs, executor=executor)
        assert_sweeps_identical(serial, result, f"fleet-{n_workers}")
        fleet_rows.append(
            {
                "workers": n_workers,
                "seconds": result[2],
                "speedup_vs_serial": serial_seconds / max(result[2], 1e-9),
                "identical": True,
            }
        )

    lines = [
        f"{len(configs)} configs x {len(datasets)} retailers x {EPOCHS} epochs; "
        f"{cores} cores available",
        "",
        "Train() sweep: serial reference vs process fleet "
        "(byte-identical outputs asserted at every width)",
        fmt_row("executor", "wall(s)", "speedup", "identical", widths=[10, 9, 9, 10]),
        fmt_row("serial", serial_seconds, "1.00x", "-", widths=[10, 9, 9, 10]),
    ]
    for row in fleet_rows:
        lines.append(
            fmt_row(
                f"fleet-{row['workers']}",
                row["seconds"],
                f"{row['speedup_vs_serial']:.2f}x",
                "yes",
                widths=[10, 9, 9, 10],
            )
        )

    if fast:
        # CI smoke: parity held (asserted above); with real parallel
        # hardware the 2-worker fleet must not be slower than serial.
        if cores >= 2:
            assert fleet_rows[0]["speedup_vs_serial"] >= 1.0
        emit("E25", "process-parallel training fleet (smoke)", lines, capsys)
        return

    # --- shared-memory Hogwild: measured wall clock vs the model --------
    hogwild_dataset = next(iter(sorted(datasets.items())))[1]
    hogwild_epochs = 4
    lane_counts = [1, 2, 4]
    base_seconds = None
    hogwild_rows = []
    lines += [
        "",
        "shared-memory Hogwild: measured speedup vs modelled thread_speedup()",
        fmt_row("lanes", "wall(s)", "measured", "modelled", widths=[6, 9, 9, 9]),
    ]
    for lanes in lane_counts:
        seconds = time_hogwild(hogwild_dataset, lanes, hogwild_epochs)
        if base_seconds is None:
            base_seconds = seconds
        measured = base_seconds / max(seconds, 1e-9)
        modelled = TrainerSettings(n_threads=lanes).thread_speedup()
        hogwild_rows.append(
            {
                "lanes": lanes,
                "seconds": seconds,
                "measured_speedup": measured,
                "modelled_speedup": modelled,
            }
        )
        lines.append(
            fmt_row(
                lanes,
                seconds,
                f"{measured:.2f}x",
                f"{modelled:.2f}x",
                widths=[6, 9, 9, 9],
            )
        )

    emit("E25", "process-parallel training fleet", lines, capsys)

    # Scaling claims only where the hardware can back them.
    if cores >= 4:
        by_workers = {row["workers"]: row for row in fleet_rows}
        assert by_workers[4]["speedup_vs_serial"] >= 3.0
        assert by_workers[2]["speedup_vs_serial"] >= 1.5
    elif cores >= 2:
        assert fleet_rows[1]["speedup_vs_serial"] >= 1.2

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "experiment": "E25",
                "source": "benchmarks/bench_training_fleet.py",
                "cpu_count": cores,
                "n_configs": len(configs),
                "n_retailers": len(datasets),
                "epochs": EPOCHS,
                "serial_seconds": serial_seconds,
                "fleet": fleet_rows,
                "hogwild": hogwild_rows,
            },
            indent=2,
        )
        + "\n"
    )
