"""Reporting helper shared by all experiment benchmarks.

``emit`` prints the experiment's paper-style rows to the real terminal
(bypassing pytest capture) and appends them to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote exact
measured values.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, title: str, lines: Iterable[str], capsys=None) -> None:
    """Print (uncaptured) and persist one experiment's result block."""
    block = [f"== {experiment_id}: {title} =="]
    block.extend(lines)
    text = "\n".join(block)
    if capsys is not None:
        with capsys.disabled():
            print("\n" + text)
    else:  # pragma: no cover - fallback when no capsys available
        print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment_id.lower()}.txt"
    out.write_text(text + "\n")


def fmt_row(*cells, widths=None) -> str:
    """Fixed-width row formatting for paper-style tables."""
    if widths is None:
        widths = [12] * len(cells)
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            parts.append(f"{cell:>{width}.4f}")
        else:
            parts.append(f"{str(cell):>{width}}")
    return "  ".join(parts)
