"""E3 — incremental training (paper section III-C3).

"The idea is to store the models from the previous day and continue
training from there instead of starting from scratch ... incremental runs
require much fewer iterations to converge", and the incremental sweep
only retrains the top-K (~3) configs instead of the full grid (~100).

The faithful setup: train to convergence on day-1 data, then — when the
day-2 log arrives (same retailer, more events) — compare training from
scratch against warm-starting from yesterday's parameters (with Adagrad
norms reset, as the paper prescribes).
"""

from __future__ import annotations

from dataclasses import replace


from benchmarks.bench_util import emit, fmt_row
from repro.core.config import ConfigRecord
from repro.core.training import TrainerSettings, train_config
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.models.bpr import BPRHyperParams

COLD_SETTINGS = TrainerSettings(
    max_epochs_full=20, convergence_tol=5e-3, patience=2, sampler="uniform"
)
WARM_SETTINGS = TrainerSettings(
    max_epochs_full=20, max_epochs_incremental=20,
    convergence_tol=5e-3, patience=2, sampler="uniform",
)

DAY1_SPEC = RetailerSpec(
    retailer_id="bench_incr", n_items=250, n_users=220, n_events=4200, seed=13
)


def test_incremental_training(benchmark, capsys):
    day1 = dataset_from_synthetic(generate_retailer(DAY1_SPEC))
    day2 = dataset_from_synthetic(
        generate_retailer(replace(DAY1_SPEC, n_events=5200))
    )
    config = ConfigRecord(
        day1.retailer_id, 0,
        BPRHyperParams(n_factors=12, learning_rate=0.08, seed=2),
    )
    day1_model, day1_output = train_config(config, day1, COLD_SETTINGS)
    _, cold_output = train_config(config, day2, COLD_SETTINGS)
    warm_config = config.for_day(1, warm_start=True)
    _, warm_output = train_config(
        warm_config, day2, WARM_SETTINGS, warm_model=day1_model
    )

    # Daily sweep cost: full grid (~100 configs) vs top-K (3 configs),
    # scaled by the measured epochs per run.
    full_grid_runs, top_k_runs = 100, 3
    full_daily = full_grid_runs * cold_output.epochs_run
    incremental_daily = top_k_runs * warm_output.epochs_run
    savings = 1.0 - incremental_daily / full_daily

    lines = [
        "day-2 data arrives; retrain from scratch vs warm start:",
        fmt_row("run", "epochs", "sgd steps", "map@10",
                widths=[18, 8, 12, 10]),
        fmt_row("day-1 cold", day1_output.epochs_run, day1_output.sgd_steps,
                day1_output.map_at_10, widths=[18, 8, 12, 10]),
        fmt_row("day-2 from scratch", cold_output.epochs_run,
                cold_output.sgd_steps, cold_output.map_at_10,
                widths=[18, 8, 12, 10]),
        fmt_row("day-2 warm start", warm_output.epochs_run,
                warm_output.sgd_steps, warm_output.map_at_10,
                widths=[18, 8, 12, 10]),
        "",
        f"daily sweep epochs: full grid ({full_grid_runs} configs x "
        f"{cold_output.epochs_run} epochs) = {full_daily}",
        f"                    incremental ({top_k_runs} configs x "
        f"{warm_output.epochs_run} epochs) = {incremental_daily}",
        f"incremental saves {savings * 100:.1f}% of daily training compute",
    ]

    assert warm_output.epochs_run < cold_output.epochs_run, (
        "warm starts must converge in fewer epochs on the new day's data"
    )
    assert warm_output.map_at_10 >= cold_output.map_at_10 * 0.85, (
        "incremental training must not degrade quality materially"
    )
    assert savings > 0.9
    emit("E3", "incremental training: warm starts converge faster", lines, capsys)

    fast = TrainerSettings(
        max_epochs_full=1, max_epochs_incremental=1, sampler="uniform"
    )
    benchmark(
        lambda: train_config(warm_config, day2, fast, warm_model=day1_model)
    )
