"""Shared fixtures for the experiment benchmarks.

Each benchmark reproduces one paper figure/claim (see DESIGN.md's
experiment index).  Training is deliberately small-scale — the paper's
*shapes* (who wins, by what factor, where crossovers fall) are what we
reproduce, not Google-scale absolute numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.cooccurrence.counts import CoOccurrenceCounts
from repro.cooccurrence.model import CoOccurrenceModel
from repro.core.hybrid import HybridRecommender
from repro.data.datasets import RetailerDataset, dataset_from_synthetic
from repro.data.generator import (
    MarketplaceSpec,
    RetailerSpec,
    generate_marketplace,
    generate_retailer,
)
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer


def train_bpr(
    dataset: RetailerDataset,
    n_factors: int = 12,
    learning_rate: float = 0.08,
    max_epochs: int = 6,
    seed: int = 1,
    **params,
) -> BPRModel:
    """One reasonable BPR model for a dataset (no grid search)."""
    model = BPRModel(
        dataset.catalog,
        dataset.taxonomy,
        BPRHyperParams(
            n_factors=n_factors, learning_rate=learning_rate, seed=seed, **params
        ),
    )
    BPRTrainer(model, dataset, max_epochs=max_epochs, seed=seed).train()
    return model


def build_cooccurrence(dataset: RetailerDataset) -> CoOccurrenceModel:
    counts = CoOccurrenceCounts.from_interactions(dataset.n_items, dataset.train)
    return CoOccurrenceModel(counts)


def build_hybrid(dataset: RetailerDataset, model: BPRModel) -> HybridRecommender:
    return HybridRecommender(model, build_cooccurrence(dataset), min_support=2.0)


@pytest.fixture(scope="session")
def fleet() -> List[RetailerDataset]:
    """A heterogeneous 6-retailer fleet (the multi-tenant workload)."""
    retailers = generate_marketplace(
        MarketplaceSpec(
            n_retailers=6,
            median_items=120,
            sigma_items=0.9,
            # Sparse traffic: plenty of items never co-occur, which is the
            # regime where the paper's long-tail story lives.
            users_per_item=0.6,
            events_per_user=8.0,
            seed=42,
        )
    )
    return [dataset_from_synthetic(retailer) for retailer in retailers]


@pytest.fixture(scope="session")
def medium_dataset() -> RetailerDataset:
    """One mid-sized retailer used by several single-retailer experiments."""
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="bench_medium",
            n_items=250,
            n_users=220,
            n_events=4200,
            seed=13,
        )
    )
    return dataset_from_synthetic(retailer)


@pytest.fixture(scope="session")
def medium_model(medium_dataset) -> BPRModel:
    return train_bpr(medium_dataset, max_epochs=8)


@pytest.fixture(scope="session")
def trained_fleet(fleet) -> Dict[str, Tuple[RetailerDataset, BPRModel]]:
    """dataset + one trained BPR model per fleet retailer."""
    return {
        dataset.retailer_id: (
            dataset,
            train_bpr(dataset, n_factors=16, max_epochs=8),
        )
        for dataset in fleet
    }
