"""E19 (extension) — BPR vs the least-squares substitute (paper §VI).

"Although we chose BPR for its simplicity and extensibility with feature
engineering, we can easily substitute it with the least-squares
approach."

We sweep a mixed grid (both model kinds, same factor counts) through the
real training pipeline on several retailers and report per-kind quality
and simulated cost — demonstrating the substitution is a config change,
not an engineering project.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro import build_cluster
from repro.core.grid import GridSpec
from repro.core.registry import ModelRegistry
from repro.core.sweep import SweepPlanner
from repro.core.training import TrainerSettings, TrainingPipeline

SETTINGS = TrainerSettings(
    max_epochs_full=6, max_epochs_incremental=3,
    convergence_tol=0.0, sampler="uniform",
)

MIXED_GRID = GridSpec(
    n_factors=(8, 16),
    learning_rates=(0.08,),
    reg_items=(0.01, 0.1),
    reg_contexts=(0.01,),
    use_taxonomy=(True,),
    use_brand=(True,),
    use_price=(True,),
    model_kinds=("bpr", "wals"),
    max_configs=16,
)


def test_bpr_vs_wals_substitution(fleet, benchmark, capsys):
    datasets = {d.retailer_id: d for d in fleet[:3]}
    cluster = build_cluster(n_cells=1, machines_per_cell=8)
    registry = ModelRegistry()
    pipeline = TrainingPipeline(cluster, registry, settings=SETTINGS, seed=5)
    plan = SweepPlanner(MIXED_GRID).full_sweep(list(datasets.values()))
    outputs, _ = pipeline.run(plan.configs, datasets)

    by_kind = {"bpr": [], "wals": []}
    seconds = {"bpr": [], "wals": []}
    for output in outputs:
        by_kind[output.config.model_kind].append(output.map_at_10)
        seconds[output.config.model_kind].append(output.train_seconds)

    winners = {"bpr": 0, "wals": 0}
    for rid in datasets:
        best = registry.best(rid)
        winners[best.output.config.model_kind] += 1

    lines = [
        f"mixed grid over {len(datasets)} retailers "
        f"({len(outputs)} models trained through one pipeline):",
        fmt_row("kind", "best map", "mean map", "mean train(s)",
                widths=[6, 9, 9, 14]),
    ]
    for kind in ("bpr", "wals"):
        lines.append(
            fmt_row(kind, max(by_kind[kind]), float(np.mean(by_kind[kind])),
                    float(np.mean(seconds[kind])), widths=[6, 9, 9, 14])
        )
    lines.append("")
    lines.append(
        f"per-retailer grid winners: bpr {winners['bpr']}, "
        f"wals {winners['wals']}"
    )
    lines.append(
        "both kinds flow through the same sweep/registry/inference path —"
    )
    lines.append("the substitution is one field on the config record")

    assert by_kind["bpr"] and by_kind["wals"], "both kinds must train"
    # Substitutability claim: the alternative is competitive, not broken.
    assert max(by_kind["wals"]) >= 0.5 * max(by_kind["bpr"])
    assert sum(winners.values()) == len(datasets)
    emit("E19", "BPR vs WALS through one pipeline (extension)", lines, capsys)

    one = next(iter(datasets.values()))
    from repro.core.config import ConfigRecord
    from repro.core.training import train_config
    from repro.models.bpr import BPRHyperParams

    config = ConfigRecord(
        one.retailer_id, 99, BPRHyperParams(n_factors=8, seed=0),
        model_kind="wals",
    )
    fast = TrainerSettings(max_epochs_full=2, sampler="uniform")
    benchmark(lambda: train_config(config, one, fast))
