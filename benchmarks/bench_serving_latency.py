"""E24 — online serving latency: p50/p99, QPS per shard, cache hit rate.

The paper's serving story (section II-A) is that request-time work is a
handful of key-value lookups against a memory/flash-tiered distributed
store.  This experiment measures the simulated request path end to end:
power-law traffic from a million-user population replayed through the
:class:`~repro.serving.frontend.ServingFrontend` against a sharded
:class:`~repro.serving.cluster.ServingCluster`, with the response cache
cold and then warm, plus a node-failure pass:

* **p50/p99 simulated latency** per phase (cluster tier latencies +
  failover penalties + fixed blend/cache/fallback costs),
* **QPS per shard** — cluster lookups per simulated second divided
  across shards (the cache absorbs the rest of the load),
* **cache hit rate**, stale serves, and fallback counts,
* a coalescing pass replaying the stream in concurrent batches.

Results land in ``benchmarks/results/e24.txt`` and ``BENCH_serving.json``.
``E24_FAST=1`` replays a small stream and asserts the cache invariant
(warm p50 < cold p50) — the CI smoke mode.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.obs import MetricsRegistry
from repro.serving.cluster import ServingCluster
from repro.serving.frontend import PopularityFallback, ServingFrontend
from repro.serving.traffic import (
    TrafficGenerator,
    synthetic_recommendation_table,
    unique_users,
)

RESULTS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_serving.json"

#: Catalog sizes across the simulated fleet (power-law, like real tenants).
CATALOGS = {
    "r_large": 4000,
    "r_big": 2000,
    "r_mid": 1000,
    "r_small": 500,
    "r_tiny": 200,
    "r_stale": 800,     # published yesterday, never today
    "r_unserved": 300,  # onboarding: fallback table only
}
N_USERS = 1_000_000
QPS = 2_000.0
SEED = 42


def build_frontend(metrics=None, cache_capacity: int = 50_000) -> ServingFrontend:
    cluster = ServingCluster(
        n_nodes=8,
        n_shards=32,
        replication=2,
        hot_fraction=0.1,
        memory_capacity_entries=2_000,
    )
    fallback = PopularityFallback()
    for retailer_id, n_items in CATALOGS.items():
        fallback.load_view_counts(
            retailer_id, {item: float(n_items - item) for item in range(n_items)}
        )
        if retailer_id == "r_unserved":
            continue
        cluster.load_batch(
            retailer_id,
            synthetic_recommendation_table(n_items, n_recs=10, seed=SEED),
            version=1,
        )
    frontend = ServingFrontend(
        cluster,
        fallback=fallback,
        cache_capacity=cache_capacity,
        cache_ttl_ms=120_000.0,
        metrics=metrics if metrics is not None else MetricsRegistry(),
    )
    for retailer_id in CATALOGS:
        # Day 1 published everywhere except r_stale (pipeline failure)
        # and r_unserved (not onboarded into the cluster yet).
        frontend.expect_version(retailer_id, 1)
    frontend.expect_version("r_stale", 2)
    return frontend


def percentile(latencies, q) -> float:
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


def replay(frontend: ServingFrontend, requests, k: int = 10) -> dict:
    """Replay a request stream; measure latency and per-shard load."""
    lookups_before = sum(node.lookups for node in frontend.cluster.nodes)
    hits_before = frontend.stats.cache_hits
    stale_before = frontend.stats.stale_serves
    fallback_before = frontend.stats.fallbacks
    latencies = []
    for request in requests:
        response = frontend.request(
            request.retailer_id, request.context, k=k,
            now_ms=request.timestamp_ms,
        )
        latencies.append(response.latency_ms)
    duration_s = (requests[-1].timestamp_ms - requests[0].timestamp_ms) / 1_000.0
    duration_s = max(duration_s, 1e-9)
    lookups = sum(node.lookups for node in frontend.cluster.nodes) - lookups_before
    n = len(requests)
    return {
        "requests": n,
        "unique_users": unique_users(requests),
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "mean_ms": float(np.mean(latencies)),
        "qps": n / duration_s,
        "qps_per_shard": n / duration_s / frontend.cluster.n_shards,
        "lookup_qps_per_shard": lookups / duration_s / frontend.cluster.n_shards,
        "cache_hit_rate": (frontend.stats.cache_hits - hits_before) / n,
        "stale_serves": frontend.stats.stale_serves - stale_before,
        "fallbacks": frontend.stats.fallbacks - fallback_before,
    }


def replay_coalesced(frontend: ServingFrontend, requests, batch_size: int = 64) -> dict:
    """Replay in concurrent batches so duplicate in-flight keys coalesce."""
    latencies = []
    for start in range(0, len(requests), batch_size):
        chunk = requests[start:start + batch_size]
        responses = frontend.request_batch(
            [(r.retailer_id, r.context) for r in chunk],
            k=10,
            now_ms=chunk[0].timestamp_ms,
        )
        latencies.extend(r.latency_ms for r in responses)
    return {
        "requests": len(requests),
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "coalesced": frontend.stats.coalesced,
    }


def test_serving_latency(capsys):
    fast = bool(os.environ.get("E24_FAST"))
    n_requests = 600 if fast else 6_000

    generator = TrafficGenerator(
        CATALOGS, n_users=N_USERS, qps=QPS, seed=SEED
    )
    stream = generator.generate(n_requests)

    # Uncached baseline: every request walks the cluster.
    uncached = replay(build_frontend(cache_capacity=0), stream)

    frontend = build_frontend()
    cold = replay(frontend, stream)      # cache filling as the head repeats
    warm = replay(frontend, stream)      # same stream, cache warmed

    # Node failure pass: kill one node, keep serving (cache still warm,
    # misses pay failover penalties on the dead node's shards).
    frontend.cluster.fail_node(0)
    failover_stream = generator.generate(n_requests // 2)
    degraded = replay(frontend, failover_stream)
    frontend.cluster.recover_node(0)

    coalescing = replay_coalesced(build_frontend(), stream)

    # ------------------------------------------------------------------
    # Invariants (enforced in fast mode too — the CI smoke)
    # ------------------------------------------------------------------
    assert warm["p50_ms"] < uncached["p50_ms"], (
        f"cached p50 {warm['p50_ms']:.3f}ms not below "
        f"uncached p50 {uncached['p50_ms']:.3f}ms"
    )
    assert warm["mean_ms"] < uncached["mean_ms"]
    assert warm["cache_hit_rate"] > cold["cache_hit_rate"]
    assert uncached["cache_hit_rate"] == 0.0
    assert cold["stale_serves"] > 0        # r_stale served, not refused
    assert cold["fallbacks"] > 0           # r_unserved fell back, no raise
    assert degraded["requests"] == n_requests // 2  # every request answered
    assert coalescing["coalesced"] > 0

    widths = [11, 9, 9, 9, 11, 11, 9]
    lines = [
        f"{len(CATALOGS)} retailers, {N_USERS:,} simulated users, "
        f"{n_requests} requests/phase at {QPS:.0f} qps; "
        f"8 nodes x 32 shards x2 replication",
        "",
        fmt_row("phase", "p50 ms", "p99 ms", "hit rate",
                "qps/shard", "lkup/shard", "fallback", widths=widths),
    ]
    for name, row in (
        ("uncached", uncached),
        ("cold", cold),
        ("warm", warm),
        ("node-down", degraded),
    ):
        lines.append(
            fmt_row(
                name,
                f"{row['p50_ms']:.3f}",
                f"{row['p99_ms']:.3f}",
                f"{row['cache_hit_rate']:.3f}",
                f"{row['qps_per_shard']:.1f}",
                f"{row['lookup_qps_per_shard']:.1f}",
                row["fallbacks"],
                widths=widths,
            )
        )
    lines.append(
        f"coalesced batches: p50 {coalescing['p50_ms']:.3f}ms, "
        f"{coalescing['coalesced']} requests coalesced"
    )
    emit("E24", "online serving latency under power-law load", lines, capsys)

    if fast:
        return

    assert degraded["p99_ms"] >= warm["p99_ms"]  # failover has a price
    RESULTS_JSON.write_text(
        json.dumps(
            {
                "experiment": "E24",
                "source": "benchmarks/bench_serving_latency.py",
                "n_retailers": len(CATALOGS),
                "n_users": N_USERS,
                "requests_per_phase": n_requests,
                "qps": QPS,
                "cluster": {
                    "n_nodes": 8, "n_shards": 32, "replication": 2,
                    "hot_fraction": 0.1, "memory_capacity_entries": 2000,
                },
                "phases": {
                    "uncached": uncached,
                    "cold": cold,
                    "warm": warm,
                    "node_down": degraded,
                    "coalesced": coalescing,
                },
            },
            indent=2,
        )
        + "\n"
    )
