"""E10 — co-occurrence wins the head, factorization helps the tail (§III-E, §VII).

"Co-occurrence based recommendations work well with large amounts of
data; more sophisticated techniques rarely outperform it ... we were able
to empirically demonstrate the value of matrix-factorization-style
approaches for the long tail ... using co-occurrence for the popular
items and augmenting them with factorization allows us to cover a much
larger fraction of the inventory."

Measured: MAP@10 of co-occurrence, BPR, and the hybrid, with holdout
examples bucketed by the held-out item's *training data volume*
(hot = 6+ interactions, warm = 2-5, cold = 0-1); plus the fraction of the
inventory each system can produce non-trivial recommendations for.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from benchmarks.conftest import build_cooccurrence, build_hybrid
from repro.data.events import EventType
from repro.data.sessions import UserContext
from repro.evaluation.metrics import average_precision_at_k

BUCKETS = (("cold(0-1)", 0, 1), ("warm(2-5)", 2, 5), ("hot(6+)", 6, 10**9))


def bucket_of(count: int) -> str:
    for label, low, high in BUCKETS:
        if low <= count <= high:
            return label
    raise AssertionError("unreachable")


def test_head_tail_decomposition(trained_fleet, benchmark, capsys):
    per_bucket = {}
    coverage = {"cooccurrence": [], "hybrid": []}
    for dataset, bpr in trained_fleet.values():
        cooc = build_cooccurrence(dataset)
        hybrid = build_hybrid(dataset, bpr)
        item_counts = Counter(it.item_index for it in dataset.train)
        for name, model in (
            ("cooccurrence", cooc), ("bpr", bpr), ("hybrid", hybrid)
        ):
            for example in dataset.holdout:
                if len(example.context) == 0:
                    continue
                label = bucket_of(item_counts.get(example.held_out_item, 0))
                rank = model.rank_of(example.context, example.held_out_item)
                ap = average_precision_at_k(rank, 10)
                per_bucket.setdefault((label, name), []).append(ap)
                per_bucket.setdefault(("overall", name), []).append(ap)
        # Coverage: single-item contexts that yield any co-occurrence
        # votes (cooc) vs any recommendation at all (hybrid).
        covered_cooc = covered_hybrid = 0
        for item in range(dataset.n_items):
            context = UserContext((item,), (EventType.VIEW,))
            if cooc.context_scores(context):
                covered_cooc += 1
            if hybrid.recommend(context, k=3):
                covered_hybrid += 1
        coverage["cooccurrence"].append(covered_cooc / dataset.n_items)
        coverage["hybrid"].append(covered_hybrid / dataset.n_items)

    means = {key: float(np.mean(values)) for key, values in per_bucket.items()}
    lines = [
        "MAP@10 by held-out item training volume (fleet-wide):",
        fmt_row("bucket", "cooccurrence", "bpr", "hybrid", "n",
                widths=[10, 13, 8, 8, 6]),
    ]
    for label in ("hot(6+)", "warm(2-5)", "cold(0-1)", "overall"):
        lines.append(
            fmt_row(
                label,
                means[(label, "cooccurrence")],
                means[(label, "bpr")],
                means[(label, "hybrid")],
                len(per_bucket[(label, "bpr")]),
                widths=[10, 13, 8, 8, 6],
            )
        )
    lines.append("")
    lines.append(
        f"inventory coverage: cooccurrence "
        f"{np.mean(coverage['cooccurrence']) * 100:.0f}% vs hybrid "
        f"{np.mean(coverage['hybrid']) * 100:.0f}%"
    )
    # Relative advantage flips as data thins out.
    hot_edge = means[("hot(6+)", "cooccurrence")] / max(
        means[("hot(6+)", "bpr")], 1e-9
    )
    cold_edge = means[("cold(0-1)", "cooccurrence")] / max(
        means[("cold(0-1)", "bpr")], 1e-9
    )
    lines.append(
        f"cooccurrence/bpr ratio: hot {hot_edge:.2f}x vs cold {cold_edge:.2f}x"
    )

    # Shape assertions:
    # 1. where data is plentiful, co-occurrence is not outperformed.
    assert means[("hot(6+)", "cooccurrence")] >= means[("hot(6+)", "bpr")] * 0.95
    # 2. co-occurrence's relative edge shrinks (or flips) on cold items.
    assert cold_edge < hot_edge
    # 3. the hybrid is the best overall system.
    assert means[("overall", "hybrid")] >= means[("overall", "cooccurrence")] * 0.98
    assert means[("overall", "hybrid")] >= means[("overall", "bpr")]
    # 4. the hybrid covers the full inventory; co-occurrence cannot.
    assert np.mean(coverage["hybrid"]) > 0.99
    assert np.mean(coverage["hybrid"]) >= np.mean(coverage["cooccurrence"])
    emit("E10", "head/tail decomposition and hybrid coverage", lines, capsys)

    dataset, bpr = next(iter(trained_fleet.values()))
    hybrid = build_hybrid(dataset, bpr)
    example = dataset.holdout[0]
    benchmark(lambda: hybrid.recommend(example.context, k=10))
