"""E26: ANN retrieval — recall vs nprobe, and the exact-GEMM crossover.

Sweeps catalog size and measures, per ``nprobe``:

* recall@10 and recall@100 of the IVF index against the exact baseline,
* per-query latency for ANN vs the exact chunked GEMM,
* index build cost.

Full mode writes ``BENCH_retrieval.json`` at the repo root with the
measured crossover (``crossover_items``: the smallest catalog where ANN
at the chosen default ``nprobe`` beats exact search) — that file is what
:func:`repro.retrieval.harness.resolve_ann_threshold` reads to pick the
service's exact-vs-ANN switch.  ``E26_FAST=1`` runs one small catalog as
a CI smoke: asserts recall@10 >= 0.9 and an ANN speedup, writes nothing.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.bench_util import emit, fmt_row
from repro.retrieval import (
    ExactRetrieval,
    IVFConfig,
    IVFIndex,
    recall_at_k,
    synthetic_embeddings,
    synthetic_queries,
)

RESULTS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_retrieval.json"

SIZES_FULL = [10_000, 50_000, 200_000, 1_000_000]
SIZES_FAST = [20_000]
NPROBES = [1, 2, 4, 8, 16, 32, 64]
N_FACTORS = 16
N_QUERIES = 256
#: The publish gate's bar: the chosen default nprobe must clear it.
RECALL_TARGET = 0.95


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_size(n_items: int, seed: int) -> dict:
    """One catalog size: build, time exact vs ANN, sweep nprobe recall."""
    vectors, bias = synthetic_embeddings(n_items, N_FACTORS, seed=seed)
    queries = synthetic_queries(vectors, N_QUERIES, seed=seed + 1)
    exact = ExactRetrieval(vectors, bias)
    build_start = time.perf_counter()
    index = IVFIndex.build(vectors, bias, IVFConfig(seed=seed))
    build_seconds = time.perf_counter() - build_start
    exact_ms = (
        _best_of(lambda: exact.search(queries, 100)) * 1000.0 / N_QUERIES
    )
    rows = []
    for nprobe in NPROBES:
        if nprobe > index.n_clusters:
            continue
        ann_ms = (
            _best_of(lambda: index.search(queries, 100, nprobe=nprobe))
            * 1000.0
            / N_QUERIES
        )
        rows.append(
            {
                "nprobe": nprobe,
                "recall_at_10": recall_at_k(index, exact, queries, 10, nprobe),
                "recall_at_100": recall_at_k(index, exact, queries, 100, nprobe),
                "ann_ms_per_query": ann_ms,
                "speedup": exact_ms / max(ann_ms, 1e-9),
            }
        )
    return {
        "n_items": n_items,
        "n_clusters": index.n_clusters,
        "build_seconds": build_seconds,
        "exact_ms_per_query": exact_ms,
        "nprobe_rows": rows,
    }


def _default_nprobe(per_size: list) -> int:
    """Smallest nprobe whose recall@100 clears the target at every size."""
    for nprobe in NPROBES:
        ok = True
        for size in per_size:
            row = next(
                (r for r in size["nprobe_rows"] if r["nprobe"] == nprobe),
                None,
            )
            # A size whose index has fewer clusters than nprobe probes
            # everything — full recall — so a missing row passes.
            if row is not None and row["recall_at_100"] < RECALL_TARGET:
                ok = False
                break
        if ok:
            return nprobe
    return NPROBES[-1]


def test_retrieval_crossover(capsys):
    fast = bool(os.environ.get("E26_FAST"))
    sizes = SIZES_FAST if fast else SIZES_FULL
    per_size = [_measure_size(n, seed=17) for n in sizes]
    default_nprobe = _default_nprobe(per_size)

    lines = [
        fmt_row("items", "clusters", "build_s", "exact_ms",
                widths=[10, 9, 8, 9]),
    ]
    for size in per_size:
        lines.append(
            fmt_row(
                f"{size['n_items']:,}",
                size["n_clusters"],
                f"{size['build_seconds']:.2f}",
                f"{size['exact_ms_per_query']:.3f}",
                widths=[10, 9, 8, 9],
            )
        )
    lines.append("")
    lines.append(
        fmt_row("items", "nprobe", "recall@10", "recall@100", "ann_ms",
                "speedup", widths=[10, 7, 10, 11, 8, 8])
    )
    for size in per_size:
        for row in size["nprobe_rows"]:
            lines.append(
                fmt_row(
                    f"{size['n_items']:,}",
                    row["nprobe"],
                    f"{row['recall_at_10']:.4f}",
                    f"{row['recall_at_100']:.4f}",
                    f"{row['ann_ms_per_query']:.3f}",
                    f"{row['speedup']:.1f}x",
                    widths=[10, 7, 10, 11, 8, 8],
                )
            )

    # Crossover: the smallest catalog where ANN at the default nprobe is
    # faster than the exact GEMM.
    crossover = None
    for size in per_size:
        row = next(
            (r for r in size["nprobe_rows"] if r["nprobe"] == default_nprobe),
            None,
        )
        if row is not None and row["speedup"] > 1.0:
            crossover = size["n_items"]
            break
    lines.append("")
    lines.append(f"default nprobe (recall@100 >= {RECALL_TARGET}): "
                 f"{default_nprobe}")
    lines.append(f"ANN-vs-exact crossover: "
                 f"{crossover:,} items" if crossover else
                 "ANN-vs-exact crossover: not reached")
    emit("E26", "ANN retrieval: recall vs nprobe and the GEMM crossover",
         lines, capsys)

    # Invariants that hold in fast and full mode alike.
    for size in per_size:
        recalls = [r["recall_at_100"] for r in size["nprobe_rows"]]
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(recalls, recalls[1:])
        ), f"recall not monotone in nprobe at {size['n_items']} items"

    if fast:
        smoke = per_size[-1]
        default_row = next(
            r for r in smoke["nprobe_rows"] if r["nprobe"] == default_nprobe
        )
        assert default_row["recall_at_10"] >= 0.9
        assert default_row["speedup"] > 1.0, (
            "ANN slower than exact at the smoke size"
        )
        return

    assert crossover is not None and crossover <= 1_000_000
    largest_row = next(
        r for r in per_size[-1]["nprobe_rows"] if r["nprobe"] == default_nprobe
    )
    assert largest_row["recall_at_100"] >= RECALL_TARGET
    RESULTS_JSON.write_text(
        json.dumps(
            {
                "experiment": "E26",
                "default_nprobe": default_nprobe,
                "recall_target": RECALL_TARGET,
                "crossover_items": crossover,
                "sizes": per_size,
            },
            indent=2,
        )
        + "\n"
    )
