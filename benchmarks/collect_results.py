#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from the recorded benchmark results.

Each benchmark writes its measured rows to ``benchmarks/results/eN.txt``
(via :func:`benchmarks.bench_util.emit`).  This script stitches those
snapshots together with the paper-side claims into the repository's
EXPERIMENTS.md, so the document always quotes real measured numbers.

Run after a full benchmark pass:

    pytest benchmarks/ --benchmark-only
    python benchmarks/collect_results.py
"""

from __future__ import annotations

import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUTPUT = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"

#: Experiment id -> (paper reference, the paper's claim in one breath).
PAPER_CLAIMS = {
    "E1": ("Fig. 6", "Sigmund's recommendations see significantly higher "
           "engagement (CTR) for less popular items while having virtually "
           "no effect on highly popular items, vs a co-occurrence baseline."),
    "E2": ("§III-C", "A model with randomly chosen hyper-parameters can be "
           "a hundred times worse on hold-out metrics than the best model."),
    "E3": ("§III-C3", "Incremental (warm-started) runs require much fewer "
           "iterations to converge; only the top-3 configs are retrained "
           "daily instead of the ~100-config grid."),
    "E4": ("§III-C2", "Estimating MAP on a 10% item sample does not hurt "
           "the model selection criterion."),
    "E5": ("§II-B", "Pre-emptible VMs cost nearly 70% less than regular "
           "VMs, provided fault-tolerance keeps restart overhead small."),
    "E6": ("§IV-B3", "Checkpointing on a fixed time interval (not per "
           "iteration) bounds the work lost to a pre-emption regardless of "
           "retailer size."),
    "E7": ("§IV-B1", "Randomly permuting config records before splitting "
           "balances training work across MapReduce workers."),
    "E8": ("§IV-C1", "Greedy first-fit bin packing (weight = inventory "
           "size) minimizes inference makespan; candidate capping keeps "
           "inference cost linear, not quadratic, in items."),
    "E9": ("§III-D1", "LCA expansion k=2 is the right precision/coverage "
           "trade-off for view-based candidates (lca1 for purchase-based)."),
    "E10": ("§III-E, §VII", "Co-occurrence works well where data is "
            "plentiful and is rarely outperformed there; factorization's "
            "value concentrates in the long tail; the hybrid covers far "
            "more of the inventory."),
    "E11": ("§III-C2", "AUC differences between good and mediocre models "
            "land in the fourth or fifth significant digit on large "
            "catalogs; MAP@10 separates them clearly."),
    "E12": ("§III-C1", "Adagrad converges faster and is more reliable than "
            "basic SGD, even for non-convex problems."),
    "E13": ("§IV-B2", "Training one retailer per machine with Hogwild "
            "threads uses the allocated memory efficiently and avoids the "
            "memory blow-ups of packing multiple models per machine."),
    "E14": ("§III-B4, §III-C", "Side features combat sparsity and cold "
            "start; a brand feature below ~10% coverage is detrimental, so "
            "feature selection is per retailer."),
    "E15": ("§IV-A", "Full sweeps train every combination for every "
            "retailer; daily incremental sweeps cost a small fraction of "
            "that; periodic full restarts keep models on recent history."),
    "E16": ("§III-C1 (extension)", "Vizier-style adaptive search (random / "
            "successive halving) can beat grid search at a matched budget."),
    "E17": ("§V (extension)", "Online A/B experiments with significance "
            "testing drive ship decisions — offline metrics alone do not."),
    "E18": ("§I, §III-C3 (extension)", "Without daily refresh, model "
            "quality decays as the catalog churns; warm-started daily "
            "retraining tracks it."),
    "E19": ("§VI (extension)", "BPR 'can easily be substituted with the "
            "least-squares approach' — WALS runs through the same sweep/"
            "registry/inference pipeline as a config-record field."),
}

HEADER = """\
# EXPERIMENTS — paper vs measured

Every experiment from DESIGN.md's index, with the paper's claim and the
rows measured by this repository's benchmark suite.  Regenerate with:

```bash
pytest benchmarks/ --benchmark-only     # runs all experiments
python benchmarks/collect_results.py    # rebuilds this file
```

Absolute numbers are not expected to match the paper (our substrate is a
simulator and the data synthetic); the *shape* of each result — who
wins, by roughly what factor, where the crossovers fall — is the
reproduction target, and each benchmark asserts that shape so the suite
fails if a change breaks it.

A note on scale: the paper operates on tens of thousands of retailers
with catalogs up to tens of millions of items.  The benchmarks run the
same code paths on fleets of ~6 retailers with 10²-10³-item catalogs so
the whole suite reproduces in minutes on one machine.
"""


def main() -> int:
    if not RESULTS_DIR.exists():
        print("no results directory; run the benchmarks first",
              file=sys.stderr)
        return 1
    sections = [HEADER]
    for experiment_id, (ref, claim) in PAPER_CLAIMS.items():
        result_file = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        sections.append(f"\n## {experiment_id} — paper {ref}\n")
        sections.append(f"**Paper claim.** {claim}\n")
        if result_file.exists():
            body = result_file.read_text().strip()
            sections.append("**Measured.**\n")
            sections.append("```text")
            sections.append(body)
            sections.append("```")
        else:
            sections.append(
                "_No recorded result — run `pytest benchmarks/ "
                "--benchmark-only` first._"
            )
    OUTPUT.write_text("\n".join(sections) + "\n")
    recorded = sum(
        1 for experiment_id in PAPER_CLAIMS
        if (RESULTS_DIR / f"{experiment_id.lower()}.txt").exists()
    )
    print(f"wrote {OUTPUT} ({recorded}/{len(PAPER_CLAIMS)} experiments recorded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
