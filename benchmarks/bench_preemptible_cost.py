"""E5 — pre-emptible VMs are ~70% cheaper despite restarts (section II-B).

"The cost advantage of this approach over using regular VMs can be
nearly 70%.  However, one needs to carefully consider the overheads from
fault-tolerance and recovery mechanisms."

We Monte-Carlo the same training job on regular vs pre-emptible capacity
(with Sigmund's checkpointing) across job lengths and print the realized
savings — including the regime where the job is so long relative to VM
uptime that the discount starts eroding.
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from repro.cluster.cost import ResourcePricing
from repro.cluster.execution import expected_cost_comparison
from repro.cluster.preemption import PreemptionModel

PRICING = ResourcePricing(preemptible_discount=0.70)
PREEMPTION = PreemptionModel(preemptible_mean_uptime_hours=6.0)


def test_preemptible_savings(benchmark, capsys):
    lines = [
        "job on 4 CPUs / 32 GB, checkpoint every 300s, mean pre-emptible",
        "uptime 6h, nominal discount 70%:",
        fmt_row("job length", "regular", "preemptible", "savings",
                widths=[12, 10, 12, 9]),
    ]
    savings_by_length = {}
    for hours in (0.5, 2.0, 8.0, 24.0):
        comparison = expected_cost_comparison(
            hours * 3600,
            request_cpus=4,
            request_memory_gb=32,
            pricing=PRICING,
            preemption_model=PREEMPTION,
            checkpoint_interval=300.0,
            trials=150,
            seed=int(hours * 10),
        )
        savings = comparison["savings_fraction"]
        savings_by_length[hours] = savings
        lines.append(
            fmt_row(
                f"{hours:.1f}h",
                comparison["regular"]["mean_cost"],
                comparison["preemptible"]["mean_cost"],
                f"{savings * 100:.1f}%",
                widths=[12, 10, 12, 9],
            )
        )

    # Without checkpointing, long jobs lose the discount to restarts.
    no_ckpt = expected_cost_comparison(
        8.0 * 3600,
        request_cpus=4,
        request_memory_gb=32,
        pricing=PRICING,
        preemption_model=PREEMPTION,
        checkpoint_interval=None,
        trials=150,
        seed=99,
    )
    lines.append("")
    lines.append(
        f"8h job WITHOUT checkpointing: savings "
        f"{no_ckpt['savings_fraction'] * 100:.1f}% "
        f"(fault-tolerance is what protects the discount)"
    )

    # Paper shape: short/medium checkpointed jobs realize ~70%.
    assert 0.60 <= savings_by_length[0.5] <= 0.72
    assert 0.60 <= savings_by_length[2.0] <= 0.72
    assert savings_by_length[8.0] > no_ckpt["savings_fraction"]
    emit("E5", "pre-emptible VM cost savings (~70%)", lines, capsys)

    benchmark(
        lambda: expected_cost_comparison(
            2 * 3600, 4, 32, PRICING, PREEMPTION, trials=20, seed=1
        )
    )
