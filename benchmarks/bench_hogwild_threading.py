"""E13 — one retailer per machine + Hogwild threads (paper section IV-B2).

"Instead of implementing a complex and brittle scheduling constraint, we
chose to train only a single retailer on a physical machine at a time,
and instead use multiple threads to train faster ... Once we have
allocated the memory, requesting CPUs to run additional training threads
helps us make more efficient use of the memory already requested."

Three measurements:

1. correctness — lock-free Hogwild training reaches the same quality as
   single-threaded training on the same budget,
2. cost — with memory as the fixed cost, adding threads to one model is
   cheaper per trained model than renting more single-thread VMs,
3. safety — packing multiple map tasks per machine makes large-retailer
   collisions exceed machine memory, which the one-model-per-machine
   policy makes impossible by construction.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.cluster.cost import ResourcePricing
from repro.cluster.machine import Priority, VMRequest
from repro.core.training import HogwildTrainer
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.rng import make_rng

PRICING = ResourcePricing()
MACHINE_MEMORY_GB = 128.0
THREAD_EFFICIENCY = 0.85


def hogwild_quality(dataset, n_threads):
    model = BPRModel(
        dataset.catalog, dataset.taxonomy,
        BPRHyperParams(n_factors=12, learning_rate=0.08, seed=8),
    )
    HogwildTrainer(dataset=dataset, model=model, n_threads=n_threads,
                   max_epochs=4, seed=8).train()
    return HoldoutEvaluator(dataset).evaluate(model).map_at_10


def test_hogwild_threading(medium_dataset, benchmark, capsys):
    # --- 1. lock-free quality parity -------------------------------------
    single = hogwild_quality(medium_dataset, 1)
    multi = hogwild_quality(medium_dataset, 4)

    # --- 2. cost per model: threads amortize the memory ------------------
    base_seconds = 3600.0
    lines = [
        f"quality parity: MAP@10 single-thread {single:.4f} vs "
        f"4 Hogwild threads {multi:.4f}",
        "",
        "cost of one trained model (32 GB resident, pre-emptible):",
        fmt_row("threads", "wall(s)", "cost/model", widths=[8, 9, 11]),
    ]
    costs = {}
    for threads in (1, 2, 4, 8):
        speedup = 1.0 + (threads - 1) * THREAD_EFFICIENCY
        duration = base_seconds / speedup
        request = VMRequest(threads, 32.0, Priority.PREEMPTIBLE)
        cost = PRICING.cost(request, duration)
        costs[threads] = cost
        lines.append(
            fmt_row(threads, f"{duration:.0f}", cost, widths=[8, 9, 11])
        )

    # --- 3. memory collisions under multi-task packing -------------------
    # Lognormal model footprints: most models are small, a few are huge —
    # like real retailer fleets.
    rng = make_rng(5)
    footprints = np.minimum(
        np.exp(rng.normal(2.2, 1.3, size=4000)), MACHINE_MEMORY_GB
    )
    tasks_per_machine = 4
    collisions = 0
    trials = len(footprints) // tasks_per_machine
    for start in range(0, trials * tasks_per_machine, tasks_per_machine):
        if footprints[start : start + tasks_per_machine].sum() > MACHINE_MEMORY_GB:
            collisions += 1
    collision_rate = collisions / trials
    lines.append("")
    lines.append(
        f"packing {tasks_per_machine} map tasks/machine on {MACHINE_MEMORY_GB:.0f}GB: "
        f"{collision_rate * 100:.1f}% of machines exceed memory"
    )
    lines.append(
        "one-model-per-machine + threads: memory collisions are impossible"
    )

    assert multi > single * 0.7, "Hogwild racing must not destroy quality"
    assert costs[4] < costs[1], "threads must cut per-model cost"
    assert costs[8] < costs[2]
    assert collision_rate > 0.05, (
        "the naive packing should show a real collision risk"
    )
    emit("E13", "Hogwild threads on one model per machine", lines, capsys)

    benchmark(lambda: hogwild_quality(medium_dataset, 4))
