"""E12 — Adagrad vs plain SGD (paper section III-C1).

"Empirically we found that Adagrad converges faster and is more reliable
than the basic SGD, even for non-convex problems."

We train the same configuration with both optimizers across several
learning rates and compare (a) epochs to reach a target loss and (b)
robustness: how much final quality varies with the learning-rate choice.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer

#: Spanning the range a grid search would probe — including the high end
#: where plain SGD becomes unstable while Adagrad self-normalizes.
LEARNING_RATES = (0.005, 0.05, 0.5)
MAX_EPOCHS = 8


def train_curve(dataset, optimizer, learning_rate):
    model = BPRModel(
        dataset.catalog,
        dataset.taxonomy,
        BPRHyperParams(
            n_factors=12, learning_rate=learning_rate,
            optimizer=optimizer, seed=3,
        ),
    )
    trainer = BPRTrainer(
        model, dataset, max_epochs=MAX_EPOCHS, convergence_tol=0.0, seed=4
    )
    losses = [loss for _, loss in trainer.iter_epochs()]
    map10 = HoldoutEvaluator(dataset).evaluate(model).map_at_10
    return losses, map10


def epochs_to_reach(losses, target):
    for epoch, loss in enumerate(losses, start=1):
        if loss <= target:
            return epoch
    return None


def test_adagrad_faster_and_more_reliable(medium_dataset, benchmark, capsys):
    results = {}
    for optimizer in ("sgd", "adagrad"):
        for lr in LEARNING_RATES:
            results[(optimizer, lr)] = train_curve(medium_dataset, optimizer, lr)

    # Target loss: what the best run achieves by mid-training.
    best_losses = min(
        (losses for losses, _ in results.values()), key=lambda ls: ls[-1]
    )
    target = best_losses[MAX_EPOCHS // 2]

    lines = [
        f"same config, {MAX_EPOCHS} epochs; target loss "
        f"{target:.3f} (best run's mid-point):",
        fmt_row("optimizer", "lr", "final loss", "epochs to target",
                "map@10", widths=[10, 7, 10, 16, 8]),
    ]
    maps = {"sgd": [], "adagrad": []}
    epochs_needed = {"sgd": [], "adagrad": []}
    for (optimizer, lr), (losses, map10) in sorted(results.items()):
        reached = epochs_to_reach(losses, target)
        maps[optimizer].append(map10)
        epochs_needed[optimizer].append(
            reached if reached is not None else MAX_EPOCHS * 2
        )
        lines.append(
            fmt_row(optimizer, lr, losses[-1],
                    str(reached) if reached else f">{MAX_EPOCHS}",
                    map10, widths=[10, 7, 10, 16, 8])
        )

    sgd_spread = float(np.std(maps["sgd"]))
    adagrad_spread = float(np.std(maps["adagrad"]))
    lines.append("")
    lines.append(
        f"MAP spread across learning rates: sgd {sgd_spread:.4f} vs "
        f"adagrad {adagrad_spread:.4f} (reliability)"
    )
    lines.append(
        f"mean epochs to target: sgd {np.mean(epochs_needed['sgd']):.1f} vs "
        f"adagrad {np.mean(epochs_needed['adagrad']):.1f}"
    )

    assert np.mean(epochs_needed["adagrad"]) <= np.mean(epochs_needed["sgd"]), (
        "Adagrad should reach the target loss in fewer epochs on average"
    )
    assert adagrad_spread <= sgd_spread, (
        "Adagrad should be less sensitive to the learning-rate choice"
    )
    assert np.mean(maps["adagrad"]) >= np.mean(maps["sgd"]) * 0.95
    emit("E12", "Adagrad converges faster and is more reliable than SGD",
         lines, capsys)

    benchmark(lambda: train_curve(medium_dataset, "adagrad", 0.05))
