"""E11 — why MAP@10, not AUC (paper section III-C2).

"We disregard AUC since it considers all positions on the ranked list
with equal importance ... for large merchants, the magnitude of the AUC
difference between a good model and a mediocre one is very small (often
in the fourth or fifth significant digit) and difficult to interpret."

We train a good and a mediocre model on a larger catalog and compare how
each metric separates them: relative MAP@10 difference vs relative AUC
difference, plus the decimal digit at which the AUC values first differ.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.bench_util import emit, fmt_row
from benchmarks.conftest import train_bpr
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.evaluation.evaluator import HoldoutEvaluator


@pytest.fixture(scope="module")
def large_dataset():
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="bench_large",
            n_items=1500,
            n_users=500,
            n_events=7000,
            taxonomy_depth=3,
            seed=31,
        )
    )
    return dataset_from_synthetic(retailer)


def first_differing_digit(a: float, b: float) -> int:
    """1-based decimal position where two values in [0,1] first differ."""
    gap = abs(a - b)
    if gap == 0:
        return 99
    return max(1, int(math.floor(-math.log10(gap))) + 1)


def test_map_separates_where_auc_compresses(large_dataset, benchmark, capsys):
    good = train_bpr(large_dataset, n_factors=16, learning_rate=0.08,
                     max_epochs=6, seed=1)
    mediocre = train_bpr(large_dataset, n_factors=4, learning_rate=0.03,
                         max_epochs=2, seed=2)

    evaluator = HoldoutEvaluator(large_dataset)
    good_result = evaluator.evaluate(good, force_exact=True)
    mediocre_result = evaluator.evaluate(mediocre, force_exact=True)

    map_good, map_mediocre = good_result.map_at_10, mediocre_result.map_at_10
    auc_good = good_result.metric("auc")
    auc_mediocre = mediocre_result.metric("auc")
    map_rel = (map_good - map_mediocre) / max(map_mediocre, 1e-9)
    auc_rel = (auc_good - auc_mediocre) / max(auc_mediocre, 1e-9)
    digit = first_differing_digit(auc_good, auc_mediocre)

    lines = [
        f"catalog: {large_dataset.n_items} items "
        f"({len(large_dataset.holdout)} holdout examples)",
        fmt_row("model", "map@10", "auc", widths=[10, 9, 9]),
        fmt_row("good", map_good, auc_good, widths=[10, 9, 9]),
        fmt_row("mediocre", map_mediocre, auc_mediocre, widths=[10, 9, 9]),
        "",
        f"relative separation: MAP {map_rel * 100:.0f}% vs AUC "
        f"{auc_rel * 100:.2f}%",
        f"AUC values first differ at decimal digit {digit} "
        f"(paper: 'fourth or fifth significant digit')",
    ]

    assert map_good > map_mediocre
    assert auc_good >= auc_mediocre * 0.999  # both look 'fine' by AUC
    assert map_rel > 10 * max(auc_rel, 1e-9), (
        "MAP must separate the models an order of magnitude better"
    )
    assert digit >= 2, "AUC difference should be buried in late digits"
    emit("E11", "MAP@10 separates models; AUC compresses", lines, capsys)

    benchmark(lambda: evaluator.evaluate(good, force_sampled=True))
