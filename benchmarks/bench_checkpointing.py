"""E6 — time-interval checkpoints bound lost work (paper section IV-B3).

"We use the strategy of scheduling checkpoints on a fixed time-interval
(e.g., every few minutes) instead of scheduling them after a fixed number
of iterations.  This choice was motivated by the heterogeneity of the
retailers ... time per iteration across retailers varies significantly.
This approach gives us a way to control the amount of work lost on
pre-emption."

We simulate training jobs for retailers whose *epoch time* spans three
orders of magnitude.  Under a per-N-epochs policy, the big retailer's
checkpoint gap (and thus the work at risk) explodes; under Sigmund's
fixed 300s wall-clock policy, mean lost work per pre-emption stays flat.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_util import emit, fmt_row
from repro.cluster.execution import run_with_preemptions
from repro.cluster.preemption import PreemptionModel

PREEMPTION = PreemptionModel(preemptible_mean_uptime_hours=2.0)

#: (retailer label, seconds per epoch) — tiny shop to huge catalog.
RETAILER_EPOCHS = [
    ("tiny", 2.0),
    ("small", 30.0),
    ("medium", 300.0),
    ("large", 3000.0),
]
EPOCHS = 24
CHECKPOINT_EVERY_N_EPOCHS = 4
TIME_INTERVAL = 300.0


def mean_lost_per_preemption(work_seconds, interval, seed):
    losts, preemptions = [], 0
    rng = np.random.default_rng(seed)
    for _ in range(80):
        trace = run_with_preemptions(
            work_seconds,
            preemption_model=PREEMPTION,
            checkpoint_interval=interval,
            seed=rng,
        )
        if trace.preemptions:
            losts.append(trace.lost_work_seconds / trace.preemptions)
            preemptions += trace.preemptions
    return (float(np.mean(losts)) if losts else 0.0), preemptions


def test_checkpoint_policy(benchmark, capsys):
    lines = [
        f"{EPOCHS} epochs per job; per-iteration policy = checkpoint every "
        f"{CHECKPOINT_EVERY_N_EPOCHS} epochs; time policy = every "
        f"{TIME_INTERVAL:.0f}s",
        fmt_row("retailer", "epoch(s)", "lost/preempt (iter)",
                "lost/preempt (time)", widths=[9, 9, 20, 20]),
    ]
    iter_losses, time_losses = {}, {}
    for index, (label, epoch_seconds) in enumerate(RETAILER_EPOCHS):
        work = epoch_seconds * EPOCHS
        # Per-iteration policy: the wall-clock gap between checkpoints is
        # N * epoch time — tiny for small shops, enormous for large ones.
        iteration_interval = CHECKPOINT_EVERY_N_EPOCHS * epoch_seconds
        lost_iter, _ = mean_lost_per_preemption(work, iteration_interval, 100 + index)
        lost_time, _ = mean_lost_per_preemption(work, TIME_INTERVAL, 200 + index)
        iter_losses[label] = lost_iter
        time_losses[label] = lost_time
        lines.append(
            fmt_row(label, f"{epoch_seconds:.0f}",
                    f"{lost_iter:.0f}s", f"{lost_time:.0f}s",
                    widths=[9, 9, 20, 20])
        )

    iter_spread = (
        max(iter_losses.values()) / max(1e-9, min(v for v in iter_losses.values() if v > 0))
    )
    time_values = [v for v in time_losses.values() if v > 0]
    time_spread = max(time_values) / min(time_values)
    lines.append("")
    lines.append(
        f"lost-work spread across retailer sizes: per-iteration "
        f"{iter_spread:.0f}x vs fixed-time {time_spread:.1f}x"
    )
    lines.append(
        "fixed-time checkpointing bounds work-at-risk regardless of size"
    )

    # Shape: the time policy's loss bound is roughly flat; the iteration
    # policy's explodes with retailer size.
    assert time_losses["large"] <= TIME_INTERVAL * 1.5
    assert iter_losses["large"] > time_losses["large"] * 3
    assert iter_spread > time_spread * 5
    emit("E6", "time-interval vs per-iteration checkpointing", lines, capsys)

    benchmark(
        lambda: run_with_preemptions(
            3600, preemption_model=PREEMPTION, checkpoint_interval=300.0, seed=1
        )
    )
