"""E15 — the daily service loop end to end (paper sections IV-A, V).

"A full sweep training run kicks off training for every combination of
hyper-parameters for every retailer ... An incremental sweep only trains
a small set of models (typically 3) for each retailer", and the periodic
full restart keeps models on recent history.

We run a 4-day Sigmund simulation over a small fleet (full restart every
3 days) and report per-day sweep kind, models trained, cost, makespan,
and pre-emptions — the operational series a Sigmund dashboard would show.
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from repro import GridSpec, SigmundService, TrainerSettings, build_cluster
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import MarketplaceSpec, generate_marketplace

SETTINGS = TrainerSettings(
    max_epochs_full=3, max_epochs_incremental=2, sampler="uniform"
)

#: A realistic (if compact) grid: 16 combinations per retailer, so the
#: full-vs-incremental contrast (16 vs top-3) is visible in the costs.
GRID = GridSpec(
    n_factors=(8, 16),
    learning_rates=(0.05, 0.1),
    reg_items=(0.01, 0.1),
    reg_contexts=(0.01,),
    use_taxonomy=(True, False),
    use_brand=(True,),
    use_price=(True,),
    max_configs=16,
)


def build_service():
    service = SigmundService(
        build_cluster(n_cells=2, machines_per_cell=6),
        grid=GRID,
        settings=SETTINGS,
        top_k_incremental=3,
        full_restart_every=3,
    )
    fleet = generate_marketplace(
        MarketplaceSpec(
            n_retailers=4, median_items=60, sigma_items=0.8,
            users_per_item=0.6, events_per_user=9.0, seed=77,
        )
    )
    for retailer in fleet:
        service.onboard(dataset_from_synthetic(retailer))
    return service


def test_daily_service_loop(benchmark, capsys):
    service = build_service()
    reports = [service.run_day() for _ in range(4)]

    lines = [
        f"{len(service.retailers)} retailers, full restart every 3 days:",
        fmt_row("day", "sweep", "models", "cost", "makespan(s)", "preempt",
                widths=[4, 12, 7, 9, 12, 8]),
    ]
    for report in reports:
        lines.append(
            fmt_row(
                report.day, report.sweep_kind, report.configs_trained,
                report.total_cost,
                f"{report.training_makespan + report.inference_makespan:.0f}",
                report.preemptions,
                widths=[4, 12, 7, 9, 12, 8],
            )
        )
    full_cost = reports[0].training_cost
    incremental_costs = [r.training_cost for r in reports if r.sweep_kind == "incremental"]
    lines.append("")
    lines.append(
        f"incremental days cost "
        f"{sum(incremental_costs) / len(incremental_costs) / full_cost * 100:.0f}% "
        f"of a full-sweep day (training)"
    )
    summary = service.monitor.fleet_summary(day=3)
    lines.append(
        f"fleet quality day 3: mean MAP {summary['mean_map']:.4f} over "
        f"{summary['retailers']:.0f} retailers; total 4-day cost "
        f"{service.total_cost():.4f}"
    )

    kinds = [r.sweep_kind for r in reports]
    assert kinds == ["full", "incremental", "incremental", "full"], (
        "day 0 full, days 1-2 incremental, day 3 periodic restart"
    )
    assert all(r.retailers_served == len(service.retailers) for r in reports)
    assert max(incremental_costs) < full_cost, (
        "incremental training days must be cheaper than full-sweep days"
    )
    emit("E15", "4-day daily service simulation", lines, capsys)

    # Timing kernel: one incremental day on the already-warm service.
    benchmark(lambda: service.run_day())
