"""E20 — vectorized mini-batch training vs the scalar SGD loop.

Sigmund's daily loop sits on the BPR training hot path: thousands of
per-retailer models retrained every day (paper section III-C).  The
scalar reference loop pays Python-level overhead per triple — one
``sgd_step`` call, per-item effective-vector reconstruction, a Python
loop over context rows.  The batched path compiles the example list into
flat CSR arrays once and updates whole mini-batches with ``np.add.at``.

Measured here:

1. throughput — triples/sec of the scalar loop vs mini-batches of
   increasing size (the acceptance bar is >= 5x at batch_size >= 64),
2. quality parity — same-seed scalar and batched runs converge to the
   same holdout MAP@10 (mini-batch semantics, not a different model).
"""

from __future__ import annotations

import time


from benchmarks.bench_util import emit, fmt_row
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer

BATCH_SIZES = (16, 64, 256)
EPOCHS = 2


def make_trainer(dataset, batch_size):
    model = BPRModel(
        dataset.catalog,
        dataset.taxonomy,
        BPRHyperParams(n_factors=16, learning_rate=0.08, seed=3),
    )
    return BPRTrainer(
        model, dataset, max_epochs=6, batch_size=batch_size, seed=7
    )


def triples_per_second(dataset, batch_size):
    trainer = make_trainer(dataset, batch_size)
    trainer.run_epoch()  # warm-up: numpy allocations, caches
    start = time.perf_counter()
    for _ in range(EPOCHS):
        trainer.run_epoch()
    elapsed = time.perf_counter() - start
    return EPOCHS * trainer.n_examples / elapsed


def trained_quality(dataset, batch_size):
    trainer = make_trainer(dataset, batch_size)
    trainer.train()
    return HoldoutEvaluator(dataset).evaluate(trainer.model).map_at_10


def test_vectorized_training_speedup(medium_dataset, benchmark, capsys):
    scalar_rate = triples_per_second(medium_dataset, batch_size=1)
    rates = {size: triples_per_second(medium_dataset, size) for size in BATCH_SIZES}

    scalar_map = trained_quality(medium_dataset, batch_size=1)
    batched_map = trained_quality(medium_dataset, batch_size=64)

    lines = [
        f"retailer: {medium_dataset.retailer_id} "
        f"({medium_dataset.n_items} items, "
        f"{make_trainer(medium_dataset, 1).n_examples} triples/epoch)",
        "",
        fmt_row("batch", "triples/s", "speedup", widths=[8, 12, 9]),
        fmt_row(1, f"{scalar_rate:,.0f}", "1.0x", widths=[8, 12, 9]),
    ]
    for size in BATCH_SIZES:
        lines.append(
            fmt_row(
                size,
                f"{rates[size]:,.0f}",
                f"{rates[size] / scalar_rate:.1f}x",
                widths=[8, 12, 9],
            )
        )
    lines.append("")
    lines.append(
        f"quality parity: MAP@10 scalar {scalar_map:.4f} vs "
        f"batch-64 {batched_map:.4f}"
    )
    emit("E20", "vectorized mini-batch training", lines, capsys)

    for size in (s for s in BATCH_SIZES if s >= 64):
        assert rates[size] >= 5.0 * scalar_rate, (
            f"batch_size={size} must be >= 5x the scalar loop "
            f"({rates[size]:,.0f} vs {scalar_rate:,.0f} triples/s)"
        )
    assert batched_map > 0.5 * scalar_map, (
        "mini-batch training must not degrade model quality"
    )

    benchmark(lambda: triples_per_second(medium_dataset, 256))
