"""E4 — sampled MAP does not change model selection (paper section III-C2).

"To save CPU cost, we sample 10% of the items and only estimate the MAP.
We verified that this approximation does not hurt our model selection
criterion."

We train several models of varying quality, compute exact and 10%-sampled
MAP@10 for each, and check that (a) the selected best model is identical
and (b) the pairwise ordering is largely preserved.
"""

from __future__ import annotations

import itertools


from benchmarks.bench_util import emit, fmt_row
from benchmarks.conftest import train_bpr
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.popularity import PopularityModel


def build_model_zoo(dataset):
    """Models spanning the quality range, like a real grid's outputs."""
    zoo = {
        "bpr_good": train_bpr(dataset, n_factors=16, learning_rate=0.08,
                              max_epochs=7, seed=1),
        "bpr_mid": train_bpr(dataset, n_factors=8, learning_rate=0.05,
                             max_epochs=3, seed=2),
        "bpr_tiny_lr": train_bpr(dataset, n_factors=8, learning_rate=0.0005,
                                 max_epochs=2, seed=3),
        "bpr_overreg": train_bpr(dataset, n_factors=8, learning_rate=0.05,
                                 reg_item=2.0, max_epochs=2, seed=4),
        "popularity": PopularityModel(dataset.n_items, dataset.train),
    }
    return zoo


def test_sampled_map_preserves_selection(medium_dataset, benchmark, capsys):
    zoo = build_model_zoo(medium_dataset)
    evaluator = HoldoutEvaluator(medium_dataset, sample_fraction=0.1)

    exact, sampled = {}, {}
    for name, model in zoo.items():
        exact[name] = evaluator.evaluate(model, force_exact=True).map_at_10
        sampled[name] = evaluator.evaluate(model, force_sampled=True).map_at_10

    lines = [fmt_row("model", "exact MAP", "sampled MAP",
                     widths=[14, 10, 12])]
    for name in sorted(zoo, key=lambda n: -exact[n]):
        lines.append(fmt_row(name, exact[name], sampled[name],
                             widths=[14, 10, 12]))

    best_exact = max(exact, key=exact.get)
    best_sampled = max(sampled, key=sampled.get)
    pairs = list(itertools.combinations(zoo, 2))
    agreements = sum(
        1
        for a, b in pairs
        if (exact[a] >= exact[b]) == (sampled[a] >= sampled[b])
    )
    agreement_rate = agreements / len(pairs)
    lines.append("")
    lines.append(f"selected best (exact):   {best_exact}")
    lines.append(f"selected best (sampled): {best_sampled}")
    lines.append(
        f"pairwise order agreement: {agreements}/{len(pairs)} "
        f"({agreement_rate * 100:.0f}%)"
    )

    assert best_exact == best_sampled, "sampling changed model selection"
    assert agreement_rate >= 0.8
    emit("E4", "10% sampled MAP preserves model selection", lines, capsys)

    model = zoo["bpr_good"]
    benchmark(lambda: evaluator.evaluate(model, force_sampled=True))
