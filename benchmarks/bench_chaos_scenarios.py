"""E27 — chaos drills: overload protection on vs off.

The serving tier's availability story (paper section V: "the system
must keep answering every retailer, every day") is only credible if it
holds under hostile traffic.  This experiment runs the scripted chaos
drills from :mod:`repro.scenarios` twice each — once with admission
control, circuit breakers, and deadline budgets enabled, once with all
protection stripped — and compares the sealed verdicts:

* **protected**: every drill must pass every acceptance check
  (availability floor, p99 bound, CTR invariance, degradation shape),
* **unprotected**: the adversarial drills (flash sale, bot flood, cell
  outage) must demonstrably fail — queue collapse blows the p99 bound
  and the bot flood moves organic CTR,
* **determinism**: rerunning a drill yields a byte-identical verdict.

Results land in ``benchmarks/results/e27.txt``, ``BENCH_chaos.json``,
and the per-scenario verdict JSON in
``benchmarks/results/chaos_verdicts.json`` (the CI artifact).
``E27_FAST=1`` runs only the two cheapest drills (flash_sale,
cell_outage) protected + unprotected and asserts protection strictly
improves worst-day p99 — the CI smoke mode.
"""

from __future__ import annotations

import json
import os
import pathlib

from benchmarks.bench_util import emit, fmt_row
from repro.scenarios import (
    FAST_SCENARIOS,
    get_scenario,
    run_scenario,
    scenario_names,
)

RESULTS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_chaos.json"
VERDICTS_JSON = pathlib.Path(__file__).parent / "results" / "chaos_verdicts.json"

#: Drills expected to FAIL with protection stripped (the bench's point).
ADVERSARIAL = ("flash_sale", "bot_flood", "cell_outage")


def summarize(result) -> dict:
    verdict = result.verdict()
    return {
        "passed": verdict["passed"],
        "p99_ms": result.p99_ms,
        "availability": result.availability,
        "organic_ctr": round(result.organic_ctr, 6),
        "shed": sum(d.shed for d in result.day_stats),
        "breaker_transitions": sum(
            d.breaker_transitions for d in result.day_stats
        ),
        "failed_checks": sorted(
            c["name"] for c in verdict["checks"] if not c["passed"]
        ),
    }


def test_chaos_scenarios(capsys):
    fast = bool(os.environ.get("E27_FAST"))
    protected_names = list(FAST_SCENARIOS) if fast else scenario_names()
    unprotected_names = [n for n in protected_names if n in ADVERSARIAL]

    protected = {
        name: run_scenario(get_scenario(name), protected=True)
        for name in protected_names
    }
    unprotected = {
        name: run_scenario(get_scenario(name), protected=False)
        for name in unprotected_names
    }

    # ------------------------------------------------------------------
    # Invariants (enforced in fast mode too — the CI smoke)
    # ------------------------------------------------------------------
    for name, result in protected.items():
        verdict = result.verdict()
        assert verdict["passed"], (
            f"{name} failed protected: "
            f"{[c for c in verdict['checks'] if not c['passed']]}"
        )
    for name, result in unprotected.items():
        assert not result.verdict()["passed"], (
            f"{name} passed UNPROTECTED — the drill no longer bites"
        )
        # Protection must strictly improve worst-day p99.
        assert protected[name].p99_ms < result.p99_ms, (
            f"{name}: protected p99 {protected[name].p99_ms:.2f}ms not "
            f"below unprotected {result.p99_ms:.2f}ms"
        )
        deadline = protected[name].scenario.deadline_ms
        assert protected[name].p99_ms <= deadline
        assert result.p99_ms > deadline

    # Byte-deterministic verdicts: rerun the cheapest drill.
    rerun_name = protected_names[0]
    rerun = run_scenario(get_scenario(rerun_name), protected=True)
    assert rerun.verdict_json() == protected[rerun_name].verdict_json()

    # ------------------------------------------------------------------
    # Report + artifacts
    # ------------------------------------------------------------------
    widths = [15, 12, 9, 9, 13, 7, 9]
    lines = [
        f"{len(protected)} drills protected, "
        f"{len(unprotected)} rerun unprotected "
        f"({'fast' if fast else 'full'} mode); deadline 25ms",
        "",
        fmt_row("scenario", "mode", "p99 ms", "avail",
                "organic CTR", "shed", "verdict", widths=widths),
    ]
    for name in protected_names:
        rows = [("protected", protected[name])]
        if name in unprotected:
            rows.append(("unprotected", unprotected[name]))
        for mode, result in rows:
            summary = summarize(result)
            lines.append(
                fmt_row(
                    name, mode,
                    f"{summary['p99_ms']:.2f}",
                    f"{summary['availability']:.4f}",
                    f"{summary['organic_ctr']:.4f}",
                    summary["shed"],
                    "PASS" if summary["passed"] else "FAIL",
                    widths=widths,
                )
            )
    emit("E27", "chaos drills: overload protection on vs off", lines, capsys)

    VERDICTS_JSON.parent.mkdir(exist_ok=True)
    VERDICTS_JSON.write_text(
        json.dumps(
            {
                "protected": {
                    n: json.loads(r.verdict_json())
                    for n, r in sorted(protected.items())
                },
                "unprotected": {
                    n: json.loads(r.verdict_json())
                    for n, r in sorted(unprotected.items())
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    if fast:
        return

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "experiment": "E27",
                "source": "benchmarks/bench_chaos_scenarios.py",
                "deadline_ms": 25.0,
                "scenarios": {
                    name: {
                        "protected": summarize(protected[name]),
                        **(
                            {"unprotected": summarize(unprotected[name])}
                            if name in unprotected else {}
                        ),
                    }
                    for name in protected_names
                },
            },
            indent=2,
        )
        + "\n"
    )
