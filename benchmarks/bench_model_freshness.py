"""E18 (extension) — why models are refreshed daily (§I, §III-C3).

"To ensure the recommendations for the users are fresh, we need to
retrain the models periodically ... retailers add new items to the
catalog, modify the sale prices on items ... For best results, we found
that we needed to refresh our models on a daily basis."

We evolve one retailer for several days (catalog churn, new users, fresh
traffic) and compare, on each day's holdout:

* a **stale** model trained once on day 0 and never refreshed (it cannot
  even score items it has never seen), vs
* a **daily-refreshed** model, warm-started each day (the incremental
  pipeline).
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from repro.core.config import ConfigRecord
from repro.core.training import TrainerSettings, train_config
from repro.data.datasets import dataset_from_synthetic
from repro.data.evolution import EvolutionSpec, evolve_retailer
from repro.data.generator import RetailerSpec, generate_retailer
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.bpr import BPRHyperParams

SETTINGS = TrainerSettings(
    max_epochs_full=6, max_epochs_incremental=3, sampler="uniform"
)
EVOLUTION = EvolutionSpec(
    new_item_rate=0.05, new_user_rate=0.08, daily_event_fraction=0.6
)
DAYS = 4


def evaluate_on(dataset, model):
    """MAP@10 of ``model`` on ``dataset``, scoring only items it knows.

    A stale model cannot score post-training items at all — those holdout
    examples score zero for it, exactly the freshness gap in production.
    """
    evaluator = HoldoutEvaluator(dataset)
    known = model.n_items
    ranks = []
    for example in dataset.holdout:
        if example.held_out_item >= known or any(
            item >= known for item in example.context.item_indices
        ):
            ranks.append(dataset.n_items)  # unknown item: total miss
            continue
        ranks.append(model.rank_of(example.context, example.held_out_item))
    metrics = evaluator._aggregate([float(r) for r in ranks])
    return metrics["map@10"]


def test_daily_refresh_beats_stale(benchmark, capsys):
    day0 = generate_retailer(
        RetailerSpec(retailer_id="bench_fresh", n_items=150, n_users=110,
                     n_events=2200, seed=37)
    )
    day0_dataset = dataset_from_synthetic(day0)
    config = ConfigRecord(
        day0.retailer_id, 0,
        BPRHyperParams(n_factors=12, learning_rate=0.08, seed=3),
    )
    stale_model, _ = train_config(config, day0_dataset, SETTINGS)

    fresh_model = stale_model
    state = day0
    lines = [
        f"{DAYS} days of churn ({EVOLUTION.new_item_rate:.0%} new items/day, "
        f"{EVOLUTION.new_user_rate:.0%} new users/day):",
        fmt_row("day", "items", "stale MAP", "refreshed MAP",
                widths=[4, 6, 10, 14]),
    ]
    stale_curve, fresh_curve = [], []
    for day in range(1, DAYS + 1):
        state = evolve_retailer(state, day, EVOLUTION)
        dataset = dataset_from_synthetic(state)
        # Daily incremental refresh: warm start from yesterday's model.
        fresh_config = config.for_day(day, warm_start=True)
        fresh_model, _ = train_config(
            fresh_config, dataset, SETTINGS, warm_model=fresh_model
        )
        stale_map = evaluate_on(dataset, stale_model)
        fresh_map = evaluate_on(dataset, fresh_model)
        stale_curve.append(stale_map)
        fresh_curve.append(fresh_map)
        lines.append(
            fmt_row(day, state.n_items, stale_map, fresh_map,
                    widths=[4, 6, 10, 14])
        )

    gap_start = fresh_curve[0] - stale_curve[0]
    gap_end = fresh_curve[-1] - stale_curve[-1]
    lines.append("")
    lines.append(
        f"freshness gap grows from {gap_start:+.4f} (day 1) to "
        f"{gap_end:+.4f} (day {DAYS})"
    )
    lines.append(
        "the stale model cannot rank new items at all; daily warm-started"
    )
    lines.append("refreshes track the catalog (paper section III-C3)")

    assert all(f >= s for f, s in zip(fresh_curve, stale_curve)), (
        "the refreshed model must never lose to the stale one"
    )
    assert gap_end > gap_start * 0.8, "the gap should not collapse over time"
    assert gap_end > 0.01, "churn must open a real freshness gap"
    emit("E18", "daily refresh vs stale model under catalog churn",
         lines, capsys)

    benchmark(lambda: evaluate_on(dataset_from_synthetic(state), fresh_model))
