"""E8 — bin-packed inference parallelization (paper section IV-C1).

Two claims:

1. "To minimize the total running time of the job, we use a greedy
   first-fit bin-packing heuristic to partition the retailers ... we use
   the number of items in each retailer's inventory as the weight."
2. "The computational cost of inference is roughly linearly proportional
   to the number of items ... because the candidate selection logic
   limits the number of candidates.  In contrast, a naive approach that
   computed the affinity for every pair of items would use the square."

We measure makespan for FFD vs naive contiguous partitioning on a skewed
fleet, and the per-retailer inference cost scaling with candidate capping
vs all-pairs scoring.
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from repro.core.binpack import (
    contiguous_partition,
    first_fit_decreasing,
    load_balance_ratio,
    makespan,
)

#: Item counts with the lognormal skew real fleets show.
FLEET_ITEMS = {
    "r_huge": 50_000,
    "r_big1": 14_000,
    "r_big2": 11_000,
    **{f"r_mid{i}": 1_500 + 173 * i for i in range(8)},
    **{f"r_small{i}": 120 + 17 * i for i in range(30)},
}
N_WORKERS = 8
MAX_CANDIDATES = 1000
SECONDS_PER_SCORE = 2e-5


def test_binpacking_and_linear_cost(benchmark, capsys):
    # --- claim 1: FFD vs naive partitioning -----------------------------
    weights = {rid: float(items) for rid, items in FLEET_ITEMS.items()}
    ffd_bins = first_fit_decreasing(weights, N_WORKERS)
    naive_bins = contiguous_partition(sorted(weights), weights, N_WORKERS)
    ffd_makespan = makespan(ffd_bins, weights)
    naive_makespan = makespan(naive_bins, weights)

    lines = [
        f"{len(FLEET_ITEMS)} retailers, {N_WORKERS} inference workers, "
        f"weight = inventory size",
        fmt_row("partitioner", "makespan(items)", "balance ratio",
                widths=[22, 16, 14]),
        fmt_row("naive contiguous", f"{naive_makespan:.0f}",
                load_balance_ratio(naive_bins, weights), widths=[22, 16, 14]),
        fmt_row("first-fit decreasing", f"{ffd_makespan:.0f}",
                load_balance_ratio(ffd_bins, weights), widths=[22, 16, 14]),
        f"FFD cuts inference makespan by "
        f"{(1 - ffd_makespan / naive_makespan) * 100:.0f}%",
        "",
    ]

    # --- claim 2: linear vs quadratic inference cost ---------------------
    lines.append(
        fmt_row("items", "capped cost(s)", "all-pairs cost(s)", "ratio",
                widths=[10, 14, 18, 10])
    )
    for items in (1_000, 10_000, 100_000):
        capped = items * min(items, MAX_CANDIDATES) * SECONDS_PER_SCORE
        quadratic = items * items * SECONDS_PER_SCORE
        lines.append(
            fmt_row(items, f"{capped:.0f}", f"{quadratic:.0f}",
                    f"{quadratic / capped:.0f}x", widths=[10, 14, 18, 10])
        )
    lines.append(
        "candidate capping keeps cost linear in inventory size; the naive"
    )
    lines.append("all-pairs approach grows quadratically (100x at 100k items)")

    assert ffd_makespan <= naive_makespan
    # LPT guarantee vs OPT (which is at least the heaviest retailer and at
    # least the mean worker load).
    opt_lower_bound = max(sum(weights.values()) / N_WORKERS, max(weights.values()))
    assert ffd_makespan <= (4 / 3) * opt_lower_bound + 1e-9
    emit("E8", "bin-packed inference partitioning + linear cost", lines, capsys)

    benchmark(lambda: first_fit_decreasing(weights, N_WORKERS))
