"""E1 / paper Fig. 6 — CTR vs item popularity, Sigmund vs co-occurrence.

The paper's only data figure: "Sigmund's recommendations see
significantly higher engagement for less popular items (the long tail)
while they have virtually no effect on highly popular items", against a
simple co-occurrence baseline, across all retailers over a 7-day window.

We replay simulated traffic through both systems on the same fleet and
print mean CTR per impressions-per-day bucket for each system plus the
Sigmund/co-occurrence ratio — the paper's two curves.
"""

from __future__ import annotations


from benchmarks.bench_util import emit, fmt_row
from benchmarks.conftest import build_cooccurrence, build_hybrid
from repro.simulation.ctr import ClickModel, ctr_by_popularity_bucket, simulate_ctr


def run_experiment(trained_fleet):
    datasets = [dataset for dataset, _ in trained_fleet.values()]
    models = {rid: model for rid, (_, model) in trained_fleet.items()}
    systems = {
        "cooccurrence": build_cooccurrence,
        "sigmund": lambda ds: build_hybrid(ds, models[ds.retailer_id]),
    }
    return simulate_ctr(
        datasets,
        systems,
        requests_per_retailer=220,
        k=6,
        days=7.0,
        click_model=ClickModel(),
        seed=6,
    )


def shared_buckets(report):
    """One bucket edge set shared by both systems for comparability."""
    pops = [
        pop
        for system in ("cooccurrence", "sigmund")
        for pop, _ in report.item_rows(system)
    ]
    max_pop = max(pops)
    edges = [0.0]
    edge = 0.25
    while edge < max_pop:
        edges.append(edge)
        edge *= 2.0
    edges.append(float("inf"))
    return edges


def test_fig6_long_tail_lift(trained_fleet, benchmark, capsys):
    report = run_experiment(trained_fleet)
    edges = shared_buckets(report)
    cooc_rows = ctr_by_popularity_bucket(report, "cooccurrence", edges)
    sig_rows = ctr_by_popularity_bucket(report, "sigmund", edges)
    cooc_by_label = {label: (ctr, items) for label, _, ctr, items in cooc_rows}
    sig_by_label = {label: (ctr, items) for label, _, ctr, items in sig_rows}

    lines = [
        "Series: mean CTR of an item shown as a recommendation, bucketed by",
        "that item's impressions/day (7-day window, all retailers).",
        fmt_row("imp/day bucket", "cooc CTR", "sigmund CTR", "ratio",
                widths=[22, 10, 12, 8]),
    ]
    ratios = []
    for label in (row[0] for row in sig_rows):
        sig_ctr, sig_items = sig_by_label[label]
        cooc_ctr, _ = cooc_by_label.get(label, (float("nan"), 0))
        ratio = sig_ctr / cooc_ctr if cooc_ctr and cooc_ctr > 0 else float("inf")
        ratios.append((label, ratio, sig_items))
        lines.append(
            fmt_row(label, cooc_ctr, sig_ctr,
                    f"{ratio:.2f}" if ratio != float("inf") else "inf",
                    widths=[22, 10, 12, 8])
        )
    lines.append("")
    lines.append(
        f"overall CTR: cooccurrence={report.overall_ctr('cooccurrence'):.4f} "
        f"sigmund={report.overall_ctr('sigmund'):.4f}"
    )

    # Shape assertions (the paper's qualitative claims):
    # 1. Sigmund never loses overall.
    assert report.overall_ctr("sigmund") >= report.overall_ctr("cooccurrence") * 0.9
    # 2. The tail lift exceeds the head lift: compare the mean finite
    #    ratio over the lower half of buckets vs the upper half.
    finite = [(label, r) for label, r, _ in ratios if r != float("inf")]
    if len(finite) >= 4:
        half = len(finite) // 2
        tail_lift = sum(r for _, r in finite[:half]) / half
        head_lift = sum(r for _, r in finite[half:]) / (len(finite) - half)
        lines.append(
            f"tail-bucket mean lift {tail_lift:.2f}x vs head-bucket "
            f"mean lift {head_lift:.2f}x"
        )
        assert tail_lift >= head_lift * 0.9, (
            "factorization's advantage should concentrate in the tail"
        )
    emit("E1", "Fig. 6 — CTR vs popularity (Sigmund vs co-occurrence)",
         lines, capsys)

    # Timing kernel: one retailer's traffic replay.
    one = next(iter(trained_fleet.values()))

    def kernel():
        simulate_ctr(
            [one[0]],
            {"sigmund": lambda ds: build_hybrid(ds, one[1])},
            requests_per_retailer=30,
            k=6,
            seed=1,
        )

    benchmark(kernel)
