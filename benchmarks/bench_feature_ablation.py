"""E14 — side features and per-retailer feature selection (§III-B4, §III-C).

Three claims:

1. "Item taxonomies also help in dealing with new (cold) items" — the
   hierarchical-additive taxonomy feature must lift unseen items'
   rankings, since category-level generalization is their only signal.
2. Feature switches belong in the grid: features shift probability mass
   to the category level, which trades top-10 precision on well-observed
   items against cold-item reach — so the right setting is per-retailer
   (exactly why Sigmund's grid includes ``use_taxonomy`` etc.).
3. "In many retailers we found the brand coverage to be less than 10%,
   which makes it detrimental to add it in as a feature."

Measured: holdout MAP@10 and cold-item (<=1 training interaction) mean
rank per feature variant, plus the brand on/off comparison at 5% brand
coverage.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from benchmarks.bench_util import emit, fmt_row
from repro.data.datasets import dataset_from_synthetic
from repro.data.generator import RetailerSpec, generate_retailer
from repro.evaluation.evaluator import HoldoutEvaluator
from repro.models.bpr import BPRHyperParams, BPRModel
from repro.models.trainer import BPRTrainer

SEEDS = (1, 2, 3)


def train_models(dataset, **switches):
    models = []
    for seed in SEEDS:
        model = BPRModel(
            dataset.catalog, dataset.taxonomy,
            BPRHyperParams(n_factors=12, learning_rate=0.08, seed=seed,
                           **switches),
        )
        BPRTrainer(model, dataset, max_epochs=6, seed=seed + 10).train()
        models.append(model)
    return models


def evaluate_variant(dataset, cold_counts, **switches):
    """(mean MAP@10, mean cold-item rank) over seeds."""
    maps, cold_ranks = [], []
    evaluator = HoldoutEvaluator(dataset)
    for model in train_models(dataset, **switches):
        maps.append(evaluator.evaluate(model).map_at_10)
        ranks = [
            model.rank_of(example.context, example.held_out_item)
            for example in dataset.holdout
            if cold_counts.get(example.held_out_item, 0) <= 1
        ]
        cold_ranks.append(float(np.mean(ranks)))
    return float(np.mean(maps)), float(np.mean(cold_ranks))


@pytest.fixture(scope="module")
def sparse_dataset():
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="bench_sparse",
            n_items=400,
            n_users=150,
            n_events=1700,
            brand_coverage=0.85,
            seed=23,
        )
    )
    return dataset_from_synthetic(retailer)


@pytest.fixture(scope="module")
def low_brand_dataset():
    retailer = generate_retailer(
        RetailerSpec(
            retailer_id="bench_lowbrand",
            n_items=300,
            n_users=140,
            n_events=1500,
            brand_coverage=0.05,
            seed=29,
        )
    )
    return dataset_from_synthetic(retailer)


def test_feature_ablation(sparse_dataset, low_brand_dataset, benchmark, capsys):
    cold_counts = Counter(it.item_index for it in sparse_dataset.train)
    n_cold = sum(
        1
        for example in sparse_dataset.holdout
        if cold_counts.get(example.held_out_item, 0) <= 1
    )
    variants = {
        "no features": dict(use_taxonomy=False, use_brand=False, use_price=False),
        "+taxonomy": dict(use_taxonomy=True, use_brand=False, use_price=False),
        "all features": dict(use_taxonomy=True, use_brand=True, use_price=True),
    }
    results = {
        name: evaluate_variant(sparse_dataset, cold_counts, **switches)
        for name, switches in variants.items()
    }

    lines = [
        f"sparse retailer: {sparse_dataset.n_items} items, "
        f"{sparse_dataset.n_train_interactions} interactions; "
        f"{n_cold} cold holdout items",
        fmt_row("variant", "map@10", "cold mean rank",
                widths=[14, 8, 15]),
    ]
    for name, (map10, cold_rank) in results.items():
        lines.append(
            fmt_row(name, map10, f"{cold_rank:.0f}/{sparse_dataset.n_items}",
                    widths=[14, 8, 15])
        )
    lines.append(
        "taxonomy pulls cold items from ~random toward the front of the"
    )
    lines.append(
        "list (its cold-start purpose) while trading some top-10 precision"
    )
    lines.append(
        "on well-observed items — hence per-retailer feature switches."
    )

    # Low-coverage brand feature: on vs off (MAP only).
    coverage = low_brand_dataset.catalog.brand_coverage()
    brand_counts = Counter(it.item_index for it in low_brand_dataset.train)
    brand_on, _ = evaluate_variant(
        low_brand_dataset, brand_counts,
        use_taxonomy=True, use_brand=True, use_price=True,
    )
    brand_off, _ = evaluate_variant(
        low_brand_dataset, brand_counts,
        use_taxonomy=True, use_brand=False, use_price=True,
    )
    lines.append("")
    lines.append(
        f"retailer with {coverage:.0%} brand coverage: "
        f"use_brand=True {brand_on:.4f} vs use_brand=False {brand_off:.4f}"
    )
    lines.append(
        "the grid's 10% coverage gate (repro.core.grid) removes the switch"
    )

    no_feat_rank = results["no features"][1]
    tax_rank = results["+taxonomy"][1]
    assert tax_rank < no_feat_rank * 0.75, (
        "taxonomy must substantially improve cold-item ranking"
    )
    assert results["all features"][1] < no_feat_rank
    assert brand_off >= brand_on * 0.97, (
        "a 5%-coverage brand feature should not help (and typically hurts)"
    )
    emit("E14", "feature ablation: cold-start value + coverage gating",
         lines, capsys)

    benchmark(
        lambda: BPRTrainer(
            BPRModel(
                sparse_dataset.catalog, sparse_dataset.taxonomy,
                BPRHyperParams(n_factors=8, seed=0),
            ),
            sparse_dataset,
            max_epochs=1,
        ).train()
    )
